"""The communication stage between the upward and downward passes.

Implements Algorithm 1 of the paper (gather/scatter of leaf source
positions and densities) and its equivalent-density variant ("the
procedure ... is similar to Algorithm 1 with two modifications: (1) we
iterate over all boxes in the LET instead of just the leaf boxes, and
(2) the owner of a box sums up the received upward equivalent densities
to obtain the global upward equivalent densities for that box").

All sends are buffered (MPI_Isend semantics), and within each box the
dependency edges form a rooted tree, processed in ascending box order on
every rank — the protocol is deadlock-free under both schemes below.

Every exchange supports two *communication schemes*:

``"flat"``
    The paper's literal Algorithm 1: every contributor sends its piece
    point-to-point to the box owner, the owner reduces and sends the
    combined data point-to-point to every user.  The owner of a coarse
    box handles O(P) messages.
``"tree"`` (default)
    The hierarchical tree-top reduction: contributors combine partial
    data along the deterministic binomial rank tree of
    :func:`repro.parallel.simmpi.tree_order` rooted at the owner, so
    each rank — the owner included — touches O(log P) messages per box;
    the scatter mirrors the same tree downward from the owner.

The two schemes are **bitwise identical**: both reduce with the fixed
binomial association of :func:`~repro.parallel.simmpi.combine_tree`
over the same participant layout, and both concatenate source pieces in
tree-position order (owner first, then the remaining contributors in
rotated ascending rank order).  Switching the scheme changes the
message pattern, never a floating-point result.

Two flavours live here:

- the blocking per-call exchanges (:func:`exchange_source_data`,
  :func:`exchange_equiv_densities`) used by the per-box
  ``parallel_evaluate`` path, now accounting their time under the
  ``pack`` (send side) and ``wait`` (receive side) phases;
- the persistent-operator machinery: :func:`exchange_source_geometry`
  runs once at setup (positions only), and :class:`ApplyExchange` runs
  the per-apply density / equivalent-density exchange with
  ``isend``/``irecv`` so the owner relay and the final ghost waits can
  be overlapped with owned-data computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import StageMeta, plan_stage
from repro.parallel.simmpi import (
    Request,
    SimComm,
    combine_tree,
    current_recorder,
    mk_tag,
    register_tag_family,
    tree_children,
    tree_order,
    tree_parent,
)
from repro.util.timing import PhaseTimer

#: Recognised communication schemes (see module docstring).
EXCHANGE_SCHEMES = ("tree", "flat")

# Tag families of the owner-centric box exchanges.  Each payload kind
# owns a gather family (contributor -> owner direction) and a scatter
# family (owner -> user direction, suffixed ``g``); each tag carries the
# box index as its single discriminator.  The static communication
# verifier introspects this registration via
# :func:`exchange_tag_families`, so runtime and verifier can never
# disagree about the tag vocabulary.
for _kind, _gather_phase, _scatter_phase in (
    ("src", "ghost_gather", "ghost_scatter"),
    ("ue", "equiv_gather", "equiv_scatter"),
    ("geo", "geo_gather", "geo_scatter"),
    ("phi", "phi_gather", "phi_scatter"),
    ("pue", "pue_gather", "pue_scatter"),
):
    register_tag_family(_kind, fields=("box",), phases=(_gather_phase,))
    register_tag_family(
        _kind + "g", fields=("box",), phases=(_scatter_phase,)
    )


def exchange_tag_families(kind: str) -> tuple[str, str]:
    """The ``(gather, scatter)`` tag families of one exchange kind."""
    mk_tag(kind, 0), mk_tag(kind + "g", 0)  # validate registration
    return kind, kind + "g"


def _check_scheme(scheme: str) -> str:
    if scheme not in EXCHANGE_SCHEMES:
        raise ValueError(
            f"exchange scheme must be one of {EXCHANGE_SCHEMES}, "
            f"got {scheme!r}"
        )
    return scheme


def _gather_pieces_flat(
    comm: SimComm,
    b: int,
    order: list[int],
    is_contrib,
    own_piece,
    tag: tuple,
) -> list:
    """Flat gather in tree-position order: one ``None``-padded piece
    per participant position, ready for :func:`combine_tree` (which
    reproduces the hierarchical scheme's association exactly)."""
    me = comm.rank
    pieces = []
    for r in order:
        if not is_contrib(r):
            pieces.append(None)
        elif r == me:
            pieces.append(own_piece())
        else:
            pieces.append(comm.recv(int(r), tag=tag))
    return pieces


def exchange_source_data(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_src: np.ndarray,
    owner: np.ndarray,
    local_points: dict[int, np.ndarray],
    local_density: dict[int, np.ndarray],
    timer: PhaseTimer | None = None,
    scheme: str = "tree",
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Algorithm 1: ghost source positions/densities for U/X interactions.

    Parameters
    ----------
    boxes:
        Indices of the (leaf) boxes whose source data must circulate —
        the union over ranks of ``uses_source`` (identical everywhere).
    contrib_src, users_src:
        ``(nranks, nboxes)`` bool matrices.
    owner:
        ``(nboxes,)`` owner rank per box.
    local_points, local_density:
        This rank's local source points / densities per contributed box.
    scheme:
        ``"tree"`` (hierarchical, default) or ``"flat"`` — bitwise
        identical results, different message patterns.

    Returns
    -------
    ``{box: (points, density)}`` with the *global* data for every box
    this rank uses (including boxes it owns or contributes to).
    """
    _check_scheme(scheme)
    me = comm.rank
    timer = timer if timer is not None else PhaseTimer()
    ndof = None
    for d in local_density.values():
        ndof = d.shape[1] if d.ndim == 2 else 1
        break

    def cat(a, b_):
        return (np.vstack([a[0], b_[0]]), np.vstack([a[1], b_[1]]))

    combined: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    if scheme == "tree":
        # GATHER — pieces combine along the owner-rooted rank tree.
        with timer.phase("wait"):
            for b in boxes:
                o = int(owner[b])
                parts = set(np.nonzero(contrib_src[:, b])[0].tolist()) | {o}
                if me not in parts:
                    continue
                mine = (
                    (local_points[b], local_density[b])
                    if contrib_src[me, b] else None
                )
                total = comm.tree_reduce(
                    mine, o, parts, tag=mk_tag("src", int(b)), combine=cat,
                    phase="ghost_gather",
                )
                if o == me:
                    combined[int(b)] = (
                        total if total is not None
                        else (np.empty((0, 3)),
                              np.empty((0, ndof if ndof else 1)))
                    )
    else:
        # GATHER — contributors send their pieces to the owner directly;
        # the owner folds them with the tree association.
        with timer.phase("pack"):
            for b in boxes:
                if contrib_src[me, b] and owner[b] != me:
                    comm.send(
                        int(owner[b]),
                        (local_points[b], local_density[b]),
                        tag=mk_tag("src", int(b)),
                        phase="ghost_gather",
                    )
        with timer.phase("wait"):
            for b in boxes:
                if owner[b] != me:
                    continue
                order = tree_order(np.nonzero(contrib_src[:, b])[0], me)
                pieces = _gather_pieces_flat(
                    comm, int(b), order,
                    lambda r, _b=b: bool(contrib_src[r, _b]),
                    lambda _b=b: (local_points[_b], local_density[_b]),
                    mk_tag("src", int(b)),
                )
                total = combine_tree(pieces, cat)
                combined[int(b)] = (
                    total if total is not None
                    else (np.empty((0, 3)),
                          np.empty((0, ndof if ndof else 1)))
                )

    # SCATTER — the owner sends the global data down to every user.
    result: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    if scheme == "tree":
        with timer.phase("wait"):
            for b in boxes:
                o = int(owner[b])
                parts = set(np.nonzero(users_src[:, b])[0].tolist()) | {o}
                if me not in parts:
                    continue
                data = comm.tree_bcast(
                    combined[int(b)] if o == me else None, o, parts,
                    tag=mk_tag("srcg", int(b)), phase="ghost_scatter",
                )
                if users_src[me, b]:
                    result[int(b)] = data
    else:
        with timer.phase("pack"):
            for b in boxes:
                if owner[b] == me:
                    for r in np.nonzero(users_src[:, b])[0]:
                        if r != me:
                            comm.send(
                                int(r), combined[int(b)],
                                tag=mk_tag("srcg", int(b)), phase="ghost_scatter",
                            )
        with timer.phase("wait"):
            for b in boxes:
                if not users_src[me, b]:
                    continue
                if owner[b] == me:
                    result[int(b)] = combined[int(b)]
                else:
                    result[int(b)] = comm.recv(
                        int(owner[b]), tag=mk_tag("srcg", int(b))
                    )
    return result


def exchange_equiv_densities(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_equiv: np.ndarray,
    owner: np.ndarray,
    partial_ue: np.ndarray,
    has_ue: np.ndarray,
    timer: PhaseTimer | None = None,
    scheme: str = "tree",
) -> dict[int, np.ndarray]:
    """Reduce partial upward equivalent densities and scatter to users.

    Every contributor's upward pass produced a *partial* equivalent
    density (linear in its local sources); the partials sum — linearity
    of equations (2.1)/(2.3) makes the sum the exact global density —
    along the owner-rooted rank tree (``"tree"``) or at the owner
    (``"flat"``, folded with the same binomial association), and the
    owner scatters the global densities to users.

    Returns ``{box: global_ue}`` for every box this rank uses.
    """
    _check_scheme(scheme)
    me = comm.rank
    timer = timer if timer is not None else PhaseTimer()

    def add(a, b_):
        return a + b_

    summed: dict[int, np.ndarray] = {}
    if scheme == "tree":
        # GATHER — partials sum along the owner-rooted rank tree.  A
        # source contributor always has a partial density (the upward
        # pass covers every box with local sources); ``has_ue`` only
        # guards against sending uninitialised storage.
        with timer.phase("wait"):
            for b in boxes:
                o = int(owner[b])
                parts = set(np.nonzero(contrib_src[:, b])[0].tolist()) | {o}
                if me not in parts:
                    continue
                mine = None
                if contrib_src[me, b]:
                    mine = (
                        partial_ue[b].copy() if has_ue[b]
                        else np.zeros_like(partial_ue[b])
                    )
                total = comm.tree_reduce(
                    mine, o, parts, tag=mk_tag("ue", int(b)), combine=add,
                    phase="equiv_gather",
                )
                if o == me:
                    summed[int(b)] = (
                        total if total is not None
                        else np.zeros_like(partial_ue[b])
                    )
    else:
        # GATHER — contributors send directly to the owner, which folds
        # the pieces with the tree association (bitwise identical).
        with timer.phase("pack"):
            for b in boxes:
                if contrib_src[me, b] and owner[b] != me:
                    payload = (
                        partial_ue[b] if has_ue[b]
                        else np.zeros_like(partial_ue[b])
                    )
                    comm.send(int(owner[b]), payload, tag=mk_tag("ue", int(b)),
                              phase="equiv_gather")
        with timer.phase("wait"):
            for b in boxes:
                if owner[b] != me:
                    continue
                order = tree_order(np.nonzero(contrib_src[:, b])[0], me)

                def own_piece(_b=b):
                    return (
                        partial_ue[_b].copy() if has_ue[_b]
                        else np.zeros_like(partial_ue[_b])
                    )

                pieces = _gather_pieces_flat(
                    comm, int(b), order,
                    lambda r, _b=b: bool(contrib_src[r, _b]),
                    own_piece, mk_tag("ue", int(b)),
                )
                total = combine_tree(pieces, add)
                summed[int(b)] = (
                    total if total is not None
                    else np.zeros_like(partial_ue[b])
                )

    # SCATTER to users.
    result: dict[int, np.ndarray] = {}
    if scheme == "tree":
        with timer.phase("wait"):
            for b in boxes:
                o = int(owner[b])
                parts = set(np.nonzero(users_equiv[:, b])[0].tolist()) | {o}
                if me not in parts:
                    continue
                data = comm.tree_bcast(
                    summed[int(b)] if o == me else None, o, parts,
                    tag=mk_tag("ueg", int(b)), phase="equiv_scatter",
                )
                if users_equiv[me, b]:
                    result[int(b)] = data
    else:
        with timer.phase("pack"):
            for b in boxes:
                if owner[b] == me:
                    for r in np.nonzero(users_equiv[:, b])[0]:
                        if r != me:
                            comm.send(int(r), summed[int(b)],
                                      tag=mk_tag("ueg", int(b)),
                                      phase="equiv_scatter")
        with timer.phase("wait"):
            for b in boxes:
                if not users_equiv[me, b]:
                    continue
                if owner[b] == me:
                    result[int(b)] = summed[int(b)]
                else:
                    result[int(b)] = comm.recv(
                        int(owner[b]), tag=mk_tag("ueg", int(b))
                    )
    return result


def exchange_source_geometry(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_src: np.ndarray,
    owner: np.ndarray,
    local_points: dict[int, np.ndarray],
    timer: PhaseTimer | None = None,
    scheme: str = "tree",
) -> dict[int, np.ndarray]:
    """Setup-time Algorithm 1 over source *positions* only.

    The persistent operator exchanges ghost geometry once: positions
    never change between applies, so each :class:`ApplyExchange` moves
    only densities.  Contributor pieces concatenate in tree-position
    order (:func:`~repro.parallel.simmpi.tree_order` rooted at the
    owner, restricted to contributors) under **both** schemes —
    :class:`ApplyExchange` reassembles densities in the identical
    order, so the combined points and the combined densities stay row
    aligned across applies and across schemes.

    Returns ``{box: global_points}`` for every box this rank uses.
    """
    _check_scheme(scheme)
    me = comm.rank
    timer = timer if timer is not None else PhaseTimer()

    def cat(a, b_):
        return np.vstack([a, b_])

    combined: dict[int, np.ndarray] = {}
    if scheme == "tree":
        with timer.phase("wait"):
            for b in boxes:
                o = int(owner[b])
                parts = set(np.nonzero(contrib_src[:, b])[0].tolist()) | {o}
                if me not in parts:
                    continue
                mine = local_points[b] if contrib_src[me, b] else None
                total = comm.tree_reduce(
                    mine, o, parts, tag=mk_tag("geo", int(b)), combine=cat,
                    phase="geo_gather",
                )
                if o == me:
                    combined[int(b)] = (
                        total if total is not None else np.empty((0, 3))
                    )
    else:
        with timer.phase("pack"):
            for b in boxes:
                if contrib_src[me, b] and owner[b] != me:
                    comm.send(int(owner[b]), local_points[b],
                              tag=mk_tag("geo", int(b)), phase="geo_gather")
        with timer.phase("wait"):
            for b in boxes:
                if owner[b] != me:
                    continue
                order = tree_order(np.nonzero(contrib_src[:, b])[0], me)
                pieces = _gather_pieces_flat(
                    comm, int(b), order,
                    lambda r, _b=b: bool(contrib_src[r, _b]),
                    lambda _b=b: local_points[_b], mk_tag("geo", int(b)),
                )
                total = combine_tree(pieces, cat)
                combined[int(b)] = (
                    total if total is not None else np.empty((0, 3))
                )

    result: dict[int, np.ndarray] = {}
    if scheme == "tree":
        with timer.phase("wait"):
            for b in boxes:
                o = int(owner[b])
                parts = set(np.nonzero(users_src[:, b])[0].tolist()) | {o}
                if me not in parts:
                    continue
                data = comm.tree_bcast(
                    combined[int(b)] if o == me else None, o, parts,
                    tag=mk_tag("geog", int(b)), phase="geo_scatter",
                )
                if users_src[me, b]:
                    result[int(b)] = data
    else:
        with timer.phase("pack"):
            for b in boxes:
                if owner[b] == me:
                    for r in np.nonzero(users_src[:, b])[0]:
                        if r != me:
                            comm.send(int(r), combined[int(b)],
                                      tag=mk_tag("geog", int(b)),
                                      phase="geo_scatter")
        with timer.phase("wait"):
            for b in boxes:
                if not users_src[me, b]:
                    continue
                if owner[b] == me:
                    result[int(b)] = combined[int(b)]
                else:
                    result[int(b)] = comm.recv(
                        int(owner[b]), tag=mk_tag("geog", int(b))
                    )
    return result


def _tree_edges(
    order: list[int], me: int
) -> tuple[int | None, list[int]]:
    """This rank's (parent, children) in the binomial tree over ``order``."""
    pos = order.index(me)
    parent = None if pos == 0 else order[tree_parent(pos)]
    children = [order[c] for c in tree_children(pos, len(order))]
    return parent, children


@plan_stage
@dataclass
class ExchangePlan:
    """One rank's role in the per-apply exchange of one payload kind.

    Precomputed at setup from the contributor/user matrices and the
    owner map; every list is in ascending box order and every rank list
    in the *tree-position* order of
    :func:`~repro.parallel.simmpi.tree_order` rooted at the owner, so
    message posting order — and therefore the reduction order — is
    schedule independent and identical under both schemes.

    ``send_to_owner`` / ``owned`` / ``recv_from`` describe the flat
    owner-centric roles and are filled under both schemes (the plan IR
    derives ghost-row layouts from them); ``gather`` / ``scatter`` hold
    the per-box binomial-tree edges and drive the ``"tree"`` scheme.
    """

    kind: str  # "phi" (source densities) or "pue" (partial equiv dens.)
    #: Boxes this rank contributes to but does not own: ``(box, owner)``.
    send_to_owner: list[tuple[int, int]]
    #: Boxes this rank owns:
    #: ``(box, peer_contributors, self_contributes, peer_users, self_uses)``.
    owned: list[tuple[int, list[int], bool, list[int], bool]]
    #: Boxes this rank uses but does not own: ``(box, owner)``.
    recv_from: list[tuple[int, int]]
    #: Communication scheme driving :class:`ApplyExchange` (see module
    #: docstring).
    scheme: str = "tree"
    #: Gather-tree nodes this rank occupies (contributors ∪ owner):
    #: ``(box, parent_rank_or_None, child_ranks, self_contributes)``.
    gather: list[tuple[int, int | None, list[int], bool]] = field(
        default_factory=list
    )
    #: Scatter-tree nodes this rank occupies (users ∪ owner):
    #: ``(box, parent_rank_or_None, child_ranks, self_uses)``.
    scatter: list[tuple[int, int | None, list[int], bool]] = field(
        default_factory=list
    )

    stage_meta = StageMeta(
        reads=("phi", "ue"), writes=("ue", "ext_phi"), dtype="float64"
    )


def build_exchange_plan(
    kind: str,
    me: int,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users: np.ndarray,
    owner: np.ndarray,
    scheme: str = "tree",
) -> ExchangePlan:
    """Split the circulating ``boxes`` by this rank's role."""
    _check_scheme(scheme)
    send_to_owner: list[tuple[int, int]] = []
    owned: list[tuple[int, list[int], bool, list[int], bool]] = []
    recv_from: list[tuple[int, int]] = []
    gather: list[tuple[int, int | None, list[int], bool]] = []
    scatter: list[tuple[int, int | None, list[int], bool]] = []
    for b in boxes:
        b = int(b)
        o = int(owner[b])
        contribs = np.nonzero(contrib_src[:, b])[0]
        user_rs = np.nonzero(users[:, b])[0]
        order_g = tree_order(contribs, o)
        order_s = tree_order(user_rs, o)
        if o == me:
            owned.append(
                (b, [r for r in order_g if r != me],
                 bool(contrib_src[me, b]),
                 [r for r in order_s if r != me],
                 bool(users[me, b]))
            )
        else:
            if contrib_src[me, b]:
                send_to_owner.append((b, o))
            if users[me, b]:
                recv_from.append((b, o))
        if me == o or contrib_src[me, b]:
            parent, children = _tree_edges(order_g, me)
            gather.append((b, parent, children, bool(contrib_src[me, b])))
        if me == o or users[me, b]:
            parent, children = _tree_edges(order_s, me)
            scatter.append((b, parent, children, bool(users[me, b])))
    return ExchangePlan(
        kind, send_to_owner, owned, recv_from, scheme, gather, scatter
    )


@dataclass
class GhostLayout:
    """Persistent layout of the per-apply exchange (one rank's view)."""

    phi: ExchangePlan  # combined source densities over ``uses_source`` boxes
    pue: ExchangePlan  # global upward equivalent densities over ``uses_equiv``
    ext_start: np.ndarray  # per-box rows into the combined source arrays
    ext_stop: np.ndarray


class ApplyExchange:
    """One apply's in-flight nonblocking exchange.

    ``start`` posts every send and receive of both sub-exchanges up
    front (buffered ``isend`` + posted ``irecv``, so the protocol cannot
    deadlock).  ``relay`` completes the gather side: owners reduce the
    contributor pieces — concatenation for densities, summation for
    partial equivalent densities (linearity of eq. 2.1/2.3) — scatter
    the combined data to users and store locally-owned data.  ``finish``
    completes the scatter side, filling the ghost rows.  Between
    ``relay`` and ``finish`` the receive queues fill while the caller
    computes on owned data — the communication/computation overlap
    window of the persistent operator.
    """

    def __init__(
        self,
        comm: SimComm,
        layout: GhostLayout,
        phi_sorted: np.ndarray,
        src_start: np.ndarray,
        src_stop: np.ndarray,
        ue: np.ndarray,
        ext_phi: np.ndarray,
        timer: PhaseTimer,
    ) -> None:
        self._comm = comm
        self._layout = layout
        self._phi_sorted = phi_sorted
        self._src_start = src_start
        self._src_stop = src_stop
        self._ue = ue
        self._ext_phi = ext_phi
        self._timer = timer
        #: Race-detector hook: the per-rank recorder installed by
        #: ``run_spmd(race=...)``, or None on uninstrumented runs.
        self._rec = current_recorder()
        # Flat-scheme state: owner-side gathers and user-side scatters.
        self._gathers: list[tuple[ExchangePlan, int, list[Request],
                                  bool, list[int], bool]] = []
        self._scatters: list[tuple[ExchangePlan, int, Request]] = []
        # Tree-scheme state: interior/root gather nodes, non-root
        # scatter nodes, and the scatter roots' (children, self_uses).
        self._gnodes: list[tuple[ExchangePlan, int, int | None,
                                 list[Request], bool]] = []
        self._snodes: list[tuple[ExchangePlan, int, Request,
                                 list[int], bool]] = []
        self._sroots: dict[tuple[str, int], tuple[list[int], bool]] = {}

    def _combiner(self, plan: ExchangePlan):
        """Pairwise combiner: concatenation for phi, summation for pue."""
        if plan.kind == "phi":
            return lambda a, c: np.vstack([a, c])
        return lambda a, c: a + c

    def _finalize(self, plan: ExchangePlan, total, npieces: int):
        """Owner-side combined data: guard the empty box, and copy when
        the binomial fold degenerated to a single piece so the combined
        array is always freshly allocated (the single piece may be a
        view of ``phi_sorted`` or a peer's buffer)."""
        if total is None:
            return np.empty((0, self._phi_sorted.shape[1]))
        return total.copy() if npieces == 1 else total

    def _piece(self, plan: ExchangePlan, b: int) -> np.ndarray:
        """This rank's local contribution to box ``b``.

        Equivalent-density rows are copied: the simulated MPI passes
        object references, and ``_store`` later overwrites ``ue[b]``
        with the *global* densities — an uncopied row view would let a
        slow receiver observe the mutated value.  ``phi`` slices are
        never written during an apply, so they ship as views.
        """
        if plan.kind == "phi":
            piece = self._phi_sorted[self._src_start[b]:self._src_stop[b]]
            if self._rec is not None:
                self._rec.read(piece, f"piece:phi box {b}")
            return piece
        if self._rec is not None:
            self._rec.read(self._ue[b], f"piece:pue box {b}")
        return self._ue[b].copy()

    def _store(self, plan: ExchangePlan, b: int, data: np.ndarray) -> None:
        """Place combined data for a used box into the apply arrays."""
        if self._rec is not None:
            self._rec.read(data, f"store:recv box {b}")
        if plan.kind == "phi":
            lay = self._layout
            dst = self._ext_phi[lay.ext_start[b]:lay.ext_stop[b]]
            if self._rec is not None:
                self._rec.write(dst, f"store:ghost-phi box {b}")
            dst[...] = data
        else:
            if self._rec is not None:
                self._rec.write(self._ue[b], f"store:global-ue box {b}")
            self._ue[b] = data

    def start(self) -> "ApplyExchange":
        """Post every send and receive of both sub-exchanges.

        Flat scheme: contributors ship their pieces to the owner and
        users post a receive from the owner.  Tree scheme: every node
        posts receives from its gather children and its scatter parent;
        gather *leaves* ship their piece immediately so interior nodes
        can start folding during the overlap window.
        """
        comm = self._comm
        with self._timer.phase("pack"):
            for plan in (self._layout.phi, self._layout.pue):
                gphase, sphase = f"{plan.kind}_gather", f"{plan.kind}_scatter"
                if plan.scheme == "tree":
                    for b, parent, children, selfc in plan.gather:
                        reqs = [
                            comm.irecv(r, tag=mk_tag(plan.kind, b), phase=gphase)
                            for r in children
                        ]
                        if parent is not None and not children:
                            comm.isend(
                                parent, self._piece(plan, b),
                                tag=mk_tag(plan.kind, b), phase=gphase,
                            )
                        else:
                            self._gnodes.append((plan, b, parent, reqs, selfc))
                    for b, parent, children, selfu in plan.scatter:
                        if parent is None:
                            self._sroots[(plan.kind, b)] = (children, selfu)
                        else:
                            req = comm.irecv(
                                parent, tag=mk_tag(plan.kind + "g", b), phase=sphase
                            )
                            self._snodes.append((plan, b, req, children, selfu))
                    continue
                for b, o in plan.send_to_owner:
                    comm.isend(o, self._piece(plan, b), tag=mk_tag(plan.kind, b),
                               phase=gphase)
                for b, peers_c, selfc, peers_u, selfu in plan.owned:
                    reqs = [
                        comm.irecv(r, tag=mk_tag(plan.kind, b), phase=gphase)
                        for r in peers_c
                    ]
                    self._gathers.append(
                        (plan, b, reqs, selfc, peers_u, selfu)
                    )
                for b, o in plan.recv_from:
                    self._scatters.append(
                        (plan, b,
                         comm.irecv(o, tag=mk_tag(plan.kind + "g", b), phase=sphase))
                    )
        return self

    def relay(self) -> None:
        """Complete gathers, reduce, and launch the scatter.

        Flat scheme: the owner folds the contributor pieces — laid out
        in tree-position order — with :func:`combine_tree` and sends the
        combined data to every user.  Tree scheme: interior gather nodes
        fold their subtree (own piece first, then children in
        ascending-mask order — the identical association) and forward
        the partial upward; the root finalizes and feeds the scatter
        tree.  Both folds are bitwise identical by construction.

        The tree scheme must wait, fold and forward *per node*, in the
        (kind, box) order every rank shares — never wait all nodes'
        children before forwarding any accumulation.  Two ranks can
        each be an interior gather node in a box the *other* is a child
        of (first possible once gather trees reach four participants,
        i.e. at large rank counts); under wait-all-then-forward each
        rank's forward is program-ordered behind its wait for the
        other's forward — a deadlock cycle.  With the shared ascending
        order, a node's forward for box ``b`` waits only on ``b``'s own
        subtree and on boxes strictly earlier in the shared order, so
        every wait chain is well-founded.  The static verifier
        (``repro commir``) checks exactly this property at P=4096.
        """
        comm = self._comm
        with self._timer.phase("wait"):
            for plan, b, parent, reqs, selfc in self._gnodes:
                child_pieces = [r.wait() for r in reqs]
                if self._rec is not None:
                    # Child pieces arrive by reference: reading them is
                    # a cross-rank access on the sender's arrays,
                    # ordered by the gather message.
                    for p in child_pieces:
                        self._rec.read(p, f"relay:piece box {b}")
                combine = self._combiner(plan)
                acc = self._piece(plan, b) if selfc else None
                npieces = (1 if selfc else 0) + len(child_pieces)
                for p in child_pieces:
                    acc = p if acc is None else combine(acc, p)
                if parent is not None:
                    # Interior node: forward the partial fold upward.
                    if self._rec is not None:
                        self._rec.write(acc, f"relay:partial box {b}")
                    comm.isend(parent, acc, tag=mk_tag(plan.kind, b),
                               phase=f"{plan.kind}_gather")
                    continue
                data = self._finalize(plan, acc, npieces)
                if self._rec is not None:
                    self._rec.write(data, f"relay:combine box {b}")
                s_children, selfu = self._sroots[(plan.kind, b)]
                for r in s_children:
                    comm.isend(r, data, tag=mk_tag(plan.kind + "g", b),
                               phase=f"{plan.kind}_scatter")
                if selfu:
                    self._store(plan, b, data)
            for plan, b, reqs, selfc, peers_u, selfu in self._gathers:
                peer_pieces = [r.wait() for r in reqs]
                if self._rec is not None:
                    for p in peer_pieces:
                        self._rec.read(p, f"relay:piece box {b}")
                pieces = [
                    self._piece(plan, b) if selfc else None
                ] + peer_pieces
                total = combine_tree(pieces, self._combiner(plan))
                data = self._finalize(
                    plan, total, sum(p is not None for p in pieces)
                )
                if self._rec is not None:
                    self._rec.write(data, f"relay:combine box {b}")
                for r in peers_u:
                    comm.isend(r, data, tag=mk_tag(plan.kind + "g", b),
                               phase=f"{plan.kind}_scatter")
                if selfu:
                    self._store(plan, b, data)

    def finish(self) -> None:
        """Complete the scatter side: fill the ghost rows.

        Tree scheme: non-root scatter nodes receive the combined data
        from their parent, forward it to their scatter children, and
        store their own ghost rows.
        """
        comm = self._comm
        with self._timer.phase("wait"):
            for plan, b, req, children, selfu in self._snodes:
                data = req.wait()
                if self._rec is not None:
                    self._rec.read(data, f"finish:recv box {b}")
                for r in children:
                    comm.isend(r, data, tag=mk_tag(plan.kind + "g", b),
                               phase=f"{plan.kind}_scatter")
                if selfu:
                    self._store(plan, b, data)
            for plan, b, req in self._scatters:
                self._store(plan, b, req.wait())
