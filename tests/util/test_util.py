"""Utility tests: flop counter, phase timer, table formatting."""

import time

import pytest

from repro.util import FlopCounter, PhaseTimer, format_table


class TestFlopCounter:
    def test_accumulation(self):
        fc = FlopCounter()
        fc.add("up", 100)
        fc.add("up", 50)
        fc.add("down_v", 25)
        assert fc.get("up") == 150
        assert fc.total == 175
        assert fc.by_phase() == {"up": 150, "down_v": 25}

    def test_pairs(self):
        fc = FlopCounter()
        fc.add_pairs("direct", 10, 13)
        assert fc.get("direct") == 130

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add("up", 1)
        b.add("up", 2)
        b.add("eval", 3)
        a.merge(b)
        assert a.get("up") == 3
        assert a.get("eval") == 3

    def test_reset(self):
        fc = FlopCounter()
        fc.add("x", 5)
        fc.reset()
        assert fc.total == 0

    def test_unknown_phase_is_zero(self):
        assert FlopCounter().get("nothing") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FlopCounter().add("up", -1)


class TestPhaseTimer:
    def test_phase_context(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.01)
        assert t.get("a") >= 0.009
        assert t.total == t.get("a")

    def test_nested_accumulation(self):
        t = PhaseTimer()
        for _ in range(3):
            with t.phase("x"):
                pass
        assert t.get("x") >= 0.0
        assert list(t.by_phase()) == ["x"]

    def test_manual_add_and_reset(self):
        t = PhaseTimer()
        t.add("manual", 2.5)
        assert t.get("manual") == 2.5
        t.reset()
        assert t.total == 0.0

    def test_exception_still_records(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("bad"):
                raise RuntimeError("boom")
        assert t.get("bad") >= 0.0


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 4.1")
        assert out.splitlines()[0] == "Table 4.1"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment(self):
        out = format_table(["col"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
