"""The comm-trace analyzer: injected bugs are diagnosed, pfmm is clean.

The acceptance bar of the analysis subsystem: commcheck must *detect* an
injected deadlock (crossed blocking receives) and an injected dropped
message, and must report the real 4-rank parallel FMM trace clean under
at least 5 perturbed schedules.
"""

import contextlib

import numpy as np
import pytest

from repro.analysis import CommTrace, check_trace, compare_traces
from repro.analysis.commcheck import main as commcheck_main
from repro.core.fmm import FMMOptions
from repro.kernels import LaplaceKernel
from repro.parallel.pfmm import run_parallel_fmm
from repro.parallel.simmpi import MailboxLeakError, run_spmd

from tests.conftest import clustered_cloud


class TestInjectedDeadlock:
    def test_crossed_blocking_recvs_reported_as_cycle(self):
        """Two ranks recv from each other before either sends."""

        def crossed(comm):
            other = 1 - comm.rank
            got = comm.recv(other, tag="x")  # blocks forever
            comm.send(other, comm.rank, tag="x")
            return got

        trace = CommTrace()
        with pytest.raises(TimeoutError):
            run_spmd(2, crossed, trace=trace, recv_timeout=0.2)
        report = check_trace(trace)
        cycles = report.by_rule("deadlock-cycle")
        assert len(cycles) == 1
        assert set(cycles[0].ranks) == {0, 1}
        # the blocked (src, dst, tag) edges are named
        assert "recv 1->0 tag='x'" in cycles[0].message
        assert "recv 0->1 tag='x'" in cycles[0].message

    def test_three_rank_cycle(self):
        def ring(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            got = comm.recv(prv, tag="ring")
            comm.send(nxt, comm.rank, tag="ring")
            return got

        trace = CommTrace()
        with pytest.raises(TimeoutError):
            run_spmd(3, ring, trace=trace, recv_timeout=0.2)
        cycles = check_trace(trace).by_rule("deadlock-cycle")
        assert len(cycles) == 1
        assert set(cycles[0].ranks) == {0, 1, 2}

    def test_orphan_wait_when_peer_finished(self):
        def lonely(comm):
            if comm.rank == 0:
                return comm.recv(1, tag="never")
            return None  # rank 1 exits without sending

        trace = CommTrace()
        with pytest.raises(TimeoutError):
            run_spmd(2, lonely, trace=trace, recv_timeout=0.2)
        report = check_trace(trace)
        orphans = report.by_rule("orphan-wait")
        assert len(orphans) == 1
        assert orphans[0].ranks == (0, 1)


class TestInjectedDrop:
    def test_dropped_message_raises_and_is_diagnosed(self):
        def dropper(comm):
            if comm.rank == 0:
                comm.send(1, np.ones(3), tag="lost")
                comm.send(1, np.ones(3), tag="lost")
            elif comm.rank == 1:
                comm.recv(0, tag="lost")  # consumes only one of two

        trace = CommTrace()
        with pytest.raises(MailboxLeakError) as exc:
            run_spmd(2, dropper, trace=trace)
        assert exc.value.leaked == [(((0, 1, "lost")), 1)]
        report = check_trace(trace)
        unmatched = report.by_rule("unmatched-send")
        assert len(unmatched) == 1
        assert "0->1" in unmatched[0].message
        assert "'lost'" in unmatched[0].message
        # runtime leak report and trace agree, so no meta-finding
        assert report.by_rule("trace-runtime-mismatch") == []


class TestRequestLeak:
    """Dynamic complement of the ``request-waited`` lint rule."""

    def test_never_waited_request_flagged_at_end_of_trace(self):
        def leaky(comm):
            if comm.rank == 0:
                comm.send(1, np.ones(2), tag="fire-and-forget")
            elif comm.rank == 1:
                comm.irecv(0, tag="fire-and-forget")  # never waited

        trace = CommTrace()
        # the un-drained mailbox also trips the runtime leak check
        with pytest.raises(MailboxLeakError):
            run_spmd(2, leaky, trace=trace)
        leaks = check_trace(trace).by_rule("request-leak")
        assert len(leaks) == 1
        assert leaks[0].ranks == (1,)
        assert "never waited" in leaks[0].message
        assert "0->1" in leaks[0].message and "'fire-and-forget'" in leaks[0].message

    def test_request_outstanding_across_collective_flagged(self):
        """Entering a barrier with an un-waited irecv is flagged even
        though the run completes (the wait lands after the barrier)."""

        def straddler(comm):
            if comm.rank == 0:
                comm.send(1, np.ones(2), tag="late")
                comm.barrier()
            elif comm.rank == 1:
                req = comm.irecv(0, tag="late")
                comm.barrier()
                req.wait()

        trace = CommTrace()
        run_spmd(2, straddler, trace=trace)
        assert trace.completed
        leaks = check_trace(trace).by_rule("request-leak")
        assert len(leaks) == 1
        assert leaks[0].ranks == (1,)
        assert "barrier" in leaks[0].message

    def test_promptly_waited_requests_are_clean(self):
        def clean(comm):
            other = 1 - comm.rank
            comm.isend(other, np.full(3, comm.rank), tag="x")
            req = comm.irecv(other, tag="x")
            got = req.wait()
            comm.barrier()
            return got

        trace = CommTrace()
        run_spmd(2, clean, trace=trace)
        assert check_trace(trace).by_rule("request-leak") == []


class TestCollectiveDivergence:
    def test_different_collectives_at_same_index(self):
        def diverge(comm):
            if comm.rank == 0:
                comm.allreduce(np.zeros(2))
            else:
                comm.allgather(0)

        # Depending on which rank draws barrier index 0 this either raises
        # (the reducer sees the bogus slot mix) or "completes" with garbage;
        # the analyzer must flag the divergence either way.
        trace = CommTrace()
        with contextlib.suppress(Exception):
            run_spmd(2, diverge, trace=trace, timeout=5)
        found = check_trace(trace).by_rule("collective-divergence")
        assert len(found) == 1
        assert "allreduce" in found[0].message
        assert "allgather" in found[0].message

    def test_mismatched_allreduce_shapes_flagged(self):
        def shapes(comm):
            comm.allreduce(np.zeros(2 if comm.rank == 0 else 3))

        trace = CommTrace()
        with pytest.raises(ValueError, match="shape mismatch"):
            run_spmd(2, shapes, trace=trace)
        found = check_trace(trace).by_rule("collective-divergence")
        assert len(found) == 1
        assert "shape" in found[0].message


class TestCleanTraces:
    def test_clean_exchange_reports_clean(self):
        def main(comm):
            nxt = (comm.rank + 1) % comm.size
            comm.send(nxt, np.full(4, comm.rank), tag="ring")
            got = comm.recv((comm.rank - 1) % comm.size, tag="ring")
            comm.barrier()
            total = comm.allreduce(got)
            return total

        trace = CommTrace()
        results = run_spmd(4, main, trace=trace)
        report = check_trace(trace)
        assert report.ok, report.summary()
        assert trace.completed
        assert np.array_equal(results[0], results[1])

    def test_fifo_order_verified(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(1, i, tag="seq")
                return None
            return [comm.recv(0, tag="seq") for _ in range(10)]

        trace = CommTrace()
        results = run_spmd(2, main, trace=trace)
        assert results[1] == list(range(10))
        report = check_trace(trace)
        assert report.by_rule("channel-order") == []
        assert report.ok, report.summary()


class TestParallelFMMClean:
    """Acceptance: the full 4-rank pfmm trace, >= 5 perturbed schedules."""

    def test_pfmm_trace_clean_under_perturbed_schedules(self, rng):
        pts = clustered_cloud(rng, 450)
        phi = rng.standard_normal((450, 1))
        opts = FMMOptions(p=3, max_points=25)
        traces, potentials = [], []
        for seed in range(5):
            trace = CommTrace()
            res = run_parallel_fmm(
                4, LaplaceKernel(), pts, phi, opts,
                trace=trace, schedule_seed=seed,
            )
            report = check_trace(trace, stats=res.comm_stats)
            assert report.ok, f"seed {seed}: {report.summary()}"
            assert trace.completed
            traces.append(trace)
            potentials.append(res.potential)
        # observable determinism across schedules
        cross = compare_traces(traces)
        assert cross.ok, cross.summary()
        for pot in potentials[1:]:
            assert np.array_equal(potentials[0], pot)

    def test_stats_cross_check_catches_tampering(self, rng):
        pts = clustered_cloud(rng, 300)
        phi = rng.standard_normal((300, 1))
        trace = CommTrace()
        res = run_parallel_fmm(
            2, LaplaceKernel(), pts, phi, FMMOptions(p=3, max_points=30),
            trace=trace,
        )
        assert check_trace(trace, stats=res.comm_stats).ok
        res.comm_stats[0].messages_sent += 1  # tamper
        tampered = check_trace(trace, stats=res.comm_stats)
        assert tampered.by_rule("stats-mismatch")


class TestCLI:
    def test_saved_trace_analyzed_clean(self, tmp_path, capsys):
        def main(comm):
            comm.send((comm.rank + 1) % 2, np.ones(2), tag="t")
            comm.recv((comm.rank + 1) % 2, tag="t")
            comm.barrier()

        trace = CommTrace()
        run_spmd(2, main, trace=trace)
        path = tmp_path / "ok.jsonl"
        trace.to_jsonl(str(path))
        assert commcheck_main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_saved_bad_trace_fails(self, tmp_path, capsys):
        def dropper(comm):
            if comm.rank == 0:
                comm.send(1, b"zzz", tag="gone")

        trace = CommTrace()
        with pytest.raises(MailboxLeakError):
            run_spmd(2, dropper, trace=trace)
        path = tmp_path / "bad.jsonl"
        trace.to_jsonl(str(path))
        assert commcheck_main([str(path)]) == 1
        assert "unmatched-send" in capsys.readouterr().out

    def test_empty_trace_directory_exits_2(self, tmp_path, capsys):
        """A directory with zero trace files must never read as
        certified (satellite: empty input is a usage error)."""
        empty = tmp_path / "traces"
        empty.mkdir()
        assert commcheck_main([str(empty)]) == 2
        out = capsys.readouterr().out
        assert "no *.jsonl trace files" in out
        assert "nothing to certify" in out

    def test_missing_trace_path_exits_2(self, capsys):
        assert commcheck_main(["does/not/exist.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().out

    def test_directory_expands_to_its_traces(self, tmp_path, capsys):
        def main(comm):
            comm.send((comm.rank + 1) % 2, np.ones(2), tag="t")
            comm.recv((comm.rank + 1) % 2, tag="t")
            comm.barrier()

        trace = CommTrace()
        run_spmd(2, main, trace=trace)
        trace.to_jsonl(str(tmp_path / "run.jsonl"))
        assert commcheck_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_commcheck_traces_flag(self, tmp_path, capsys):
        """`repro commcheck --traces DIR` delegates to the offline
        analyzer, including its exit-2 empty-input semantics."""
        from repro.cli import main as cli_main

        empty = tmp_path / "none"
        empty.mkdir()
        assert cli_main(["commcheck", "--traces", str(empty)]) == 2
        assert "no *.jsonl trace files" in capsys.readouterr().out
        assert cli_main(
            ["commcheck", "--traces", "missing/dir/x.jsonl"]
        ) == 2
