"""Static, trace-based and runtime correctness analysis.

Three pillars (see ``docs/architecture.md`` § "Analysis & correctness
tooling" and § "Race detection & sanitizers"):

- :mod:`repro.analysis.trace` / :mod:`repro.analysis.commcheck` — a
  per-rank communication event trace recorded by the simulated MPI
  runtime (Lamport + vector clocks on every send/recv/collective) and an
  offline analyzer that builds the happens-before relation and proves an
  execution free of leaked messages, wait-for deadlock cycles,
  collective divergence, channel-order nondeterminism and un-waited
  receive requests.
- :mod:`repro.analysis.racecheck` / :mod:`repro.analysis.sanitize` — a
  happens-before data-race detector over instrumented shared-array
  accesses of the overlapped parallel path (``repro racecheck``), and
  the ``REPRO_SANITIZE=1`` runtime sanitizers (BufferPool lifecycle
  with NaN poisoning, phase-boundary finite checks, GEMM aliasing
  guards).
- :mod:`repro.analysis.lint` — an ``ast``-based lint of repo invariants
  (flop accounting, thread confinement, dtype width, buffer-pool
  escapes, mutable defaults, request completion, plan-stage metadata)
  run as ``python -m repro.analysis.lint src/``.
- :mod:`repro.analysis.planir` / :mod:`repro.analysis.plancheck` — the
  static plan verifier (``repro plancheck``): compiled execution plans
  extracted as a dataflow IR and certified without running an apply —
  buffer liveness, dtype-flow with explicit-narrowing enforcement,
  overlap-schedule happens-before consistency, and an exact flop-budget
  identity against the performance model, plus seeded-defect self-tests.
- :mod:`repro.analysis.commir` / :mod:`repro.analysis.commcheck_static`
  / :mod:`repro.analysis.dpor` — the static *communication* verifier
  (``repro commir``): the complete message schedule extracted from the
  plan inputs as a CommIR for arbitrary rank counts (P=4096 included)
  and certified without executing an apply — send/recv matching, tag
  discipline, deadlock-freedom, cross-scheme payload conservation, and
  conformance of dynamic traces — plus exhaustive schedule-space model
  checking (``repro dpor``) proving deadlock-freedom and observable
  determinism over *every* interleaving at small rank counts.
"""

from repro.analysis.commcheck import CommReport, Finding, check_trace, compare_traces
from repro.analysis.racecheck import AccessRecord, Race, RaceDetector, RaceReport
from repro.analysis.sanitize import SanitizerError
from repro.analysis.trace import CommTrace, TraceEvent, payload_digest

# The plan-verifier modules import the evaluation core, whose modules in
# turn import this package (for the runtime sanitizers) — so their names
# resolve lazily (PEP 562) to keep the import graph acyclic.
_PLAN_EXPORTS = {
    "PlanIR": "planir",
    "extract_plan_ir": "planir",
    "extract_rank_ir": "planir",
    "PlanReport": "plancheck",
    "certify_parallel": "plancheck",
    "certify_sequential": "plancheck",
    "run_checks": "plancheck",
    "run_selftests": "plancheck",
    "CommIR": "commir",
    "CommOp": "commir",
    "extract_comm_ir": "commir",
    "static_plan_inputs": "commir",
    "StaticCommReport": "commcheck_static",
    "DporReport": "dpor",
}


def __getattr__(name: str):
    if name in _PLAN_EXPORTS:
        import importlib

        mod = importlib.import_module(
            f"repro.analysis.{_PLAN_EXPORTS[name]}"
        )
        return getattr(mod, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "AccessRecord",
    "CommIR",
    "CommOp",
    "CommReport",
    "CommTrace",
    "DporReport",
    "Finding",
    "StaticCommReport",
    "PlanIR",
    "PlanReport",
    "Race",
    "RaceDetector",
    "RaceReport",
    "SanitizerError",
    "TraceEvent",
    "certify_parallel",
    "certify_sequential",
    "check_trace",
    "compare_traces",
    "extract_comm_ir",
    "extract_plan_ir",
    "extract_rank_ir",
    "static_plan_inputs",
    "payload_digest",
    "run_checks",
    "run_selftests",
]
