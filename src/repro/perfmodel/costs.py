"""Per-box floating-point work, computed from real trees and lists.

These formulas mirror the flop accounting of
:mod:`repro.core.evaluator` exactly — kernel pair evaluations cost
``kernel.flops_per_pair`` and dense matrix-vector products cost
``2 * rows * cols`` — so the model's work volumes are the ones the
implementation actually performs, not asymptotic estimates.

Downward-phase work is attributed to the *target* box (whose contributor
ranks redundantly perform it in the parallel algorithm) and upward work
to the *source* box.  The one exception is the V-list forward transform:
the planned evaluator forward-FFTs each effective source box once per
level, so its cost sits on the *source* box — this keeps the per-phase
totals an exact identity with the evaluator's flop counter, which the
static plan verifier (``repro plancheck``) certifies configuration by
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.m2lschedule import M2LSchedule
from repro.core.surfaces import n_surface_points
from repro.kernels.base import Kernel
from repro.octree.lists import InteractionLists
from repro.octree.tree import Octree


@dataclass
class PhaseWork:
    """Flops per box, per interaction phase (arrays of length nboxes)."""

    up: np.ndarray
    down_u: np.ndarray
    down_v: np.ndarray
    down_w: np.ndarray
    down_x: np.ndarray
    eval: np.ndarray

    def totals(self) -> dict[str, float]:
        return {
            "up": float(self.up.sum()),
            "down_u": float(self.down_u.sum()),
            "down_v": float(self.down_v.sum()),
            "down_w": float(self.down_w.sum()),
            "down_x": float(self.down_x.sum()),
            "eval": float(self.eval.sum()),
        }

    @property
    def total(self) -> float:
        return sum(self.totals().values())


def compute_work(
    tree: Octree,
    lists: InteractionLists,
    kernel: Kernel,
    p: int,
    m2l: str | M2LSchedule = "fft",
    global_nsrc: np.ndarray | None = None,
    global_ntrg: np.ndarray | None = None,
    nrhs: int = 1,
    up_nsrc: np.ndarray | None = None,
    rsvd_rank=None,
    v_targets: np.ndarray | None = None,
) -> PhaseWork:
    """Flop volumes of one interaction evaluation.

    ``global_nsrc``/``global_ntrg`` default to the tree's own counts;
    they are overridable so scaled particle counts can be modelled on a
    structurally-identical tree.  ``up_nsrc`` (default ``global_nsrc``)
    gates and sizes the *upward* pass separately: a rank of the parallel
    algorithm performs its partial upward pass over its **local** source
    counts while its downward partners are gated by **global** counts,
    so modelling one rank's LET passes ``global_nsrc=ptree.global_nsrc``
    together with ``up_nsrc=<local counts>``.  ``nrhs`` scales every
    phase linearly — a batched multi-RHS apply performs each
    translation, transform and kernel product once per right-hand side
    (index building, kernel assembly and tree traversal are amortised
    but cost no flops, so the flop model is exactly linear even though
    wall-clock time is not).

    ``m2l`` is a uniform backend name (``"fft"``, ``"dense"``,
    ``"rsvd"``) or a resolved
    :class:`~repro.core.m2lschedule.M2LSchedule` for mixed per-level
    backends (``"auto"`` must be resolved by the caller — the picker
    needs an operator cache, the flop model does not).  Any rsvd level
    additionally needs ``rsvd_rank``, a ``(level, offset) -> rank``
    callable (typically ``cache.m2l_rsvd_rank``), because the
    compressed per-pair cost depends on each offset class's numerical
    rank.

    ``v_targets`` optionally overrides which boxes this rank performs
    V-list *target-side* work for (Hadamard/dense/rsvd accumulation plus
    the inverse transform), as a boolean mask over boxes; the forward
    transforms follow (a source box is transformed iff it feeds at least
    one ``v_targets`` box on an fft level).  Defaults to every box with
    targets — the fully redundant tree top.  The parallel coarse-level
    split passes its per-rank assignment mask (``RankFMM.v_compute``)
    so the per-rank flop identity stays exact.
    """
    if isinstance(m2l, M2LSchedule):
        backend_of = m2l.backend
    elif m2l in ("fft", "dense", "rsvd"):
        backend_of = lambda level, _b=m2l: _b  # noqa: E731
    else:
        raise ValueError(
            f"m2l must be 'fft', 'dense', 'rsvd' or a resolved "
            f"M2LSchedule, got {m2l}"
        )
    nb = tree.nboxes
    boxes = tree.boxes
    n_surf = n_surface_points(p)
    md, qd = kernel.source_dof, kernel.target_dof
    fpp = float(kernel.flops_per_pair)
    nsrc = (
        np.asarray(global_nsrc, dtype=np.float64)
        if global_nsrc is not None
        else np.array([b.nsrc for b in boxes], dtype=np.float64)
    )
    ntrg = (
        np.asarray(global_ntrg, dtype=np.float64)
        if global_ntrg is not None
        else np.array([b.ntrg for b in boxes], dtype=np.float64)
    )
    unsrc = (
        np.asarray(up_nsrc, dtype=np.float64)
        if up_nsrc is not None
        else nsrc
    )

    pinv_flops = 2.0 * (n_surf * md) * (n_surf * qd)
    m2m_flops = 2.0 * (n_surf * qd) * (n_surf * md)  # per child matvec
    l2l_flops = m2m_flops
    m2l_dense_flops = m2m_flops
    grid = 2 * p
    nfreq = grid * grid * (grid // 2 + 1)
    hadamard_flops = 8.0 * qd * md * nfreq
    # Forward/inverse transforms are GEMM-DFTs over the n_surf surface
    # nodes (two real GEMMs each), matching FFTM2L.flops_per_fft.
    fft_flops = 4.0 * nfreq * n_surf

    up = np.zeros(nb)
    down_u = np.zeros(nb)
    down_v = np.zeros(nb)
    down_w = np.zeros(nb)
    down_x = np.zeros(nb)
    evalw = np.zeros(nb)

    vtm = (
        np.asarray(v_targets, dtype=bool)
        if v_targets is not None
        else ntrg > 0
    )

    # Which V-graph source boxes feed at least one target this rank
    # performs V work for *on an fft-scheduled level*: exactly those get
    # a forward transform (once per level) in the planned evaluator,
    # attributed here to the source box that performs it.  V lists are
    # same-level, so the target's level is the source's.
    v_feeds = np.zeros(nb, dtype=bool)
    for b in boxes:
        if vtm[b.index] and backend_of(b.level) == "fft":
            for a in lists.V[b.index]:
                v_feeds[a] = True

    # Which boxes actually carry downward data: a box inverts its check
    # potential (and a leaf evaluates L2T) only if it or an ancestor
    # received a V- or X-list contribution — matching the evaluator's
    # has_dc/has_de gating.
    has_down = np.zeros(nb, dtype=bool)
    for b in boxes:  # boxes are in level order, so parents come first
        i = b.index
        own = any(nsrc[a] > 0 for a in lists.V[i]) or any(
            nsrc[a] > 0 for a in lists.X[i]
        )
        has_down[i] = own or (b.parent >= 0 and has_down[b.parent])

    for b in boxes:
        i = b.index
        has_trg = ntrg[i] > 0
        if unsrc[i] > 0:
            if b.is_leaf:
                up[i] += n_surf * unsrc[i] * fpp  # S2M check evaluation
            else:
                nkids = sum(1 for c in b.children if unsrc[c] > 0)
                up[i] += nkids * m2m_flops
            up[i] += pinv_flops  # uc2ue inversion
        if nsrc[i] > 0 and v_feeds[i]:
            down_v[i] += md * fft_flops  # forward transform of this source

        nv = sum(1 for a in lists.V[i] if nsrc[a] > 0)
        if nv and vtm[i]:
            backend = backend_of(b.level)
            if backend == "dense":
                down_v[i] += nv * m2l_dense_flops
            elif backend == "rsvd":
                if rsvd_rank is None:
                    raise ValueError(
                        "rsvd-scheduled levels need rsvd_rank, a "
                        "(level, offset) -> rank callable (e.g. "
                        "OperatorCache.m2l_rsvd_rank)"
                    )
                # Two stacked GEMMs through the rank-k factors; the
                # rank is an offset-class property, so each pair is
                # priced individually (mirrors _rsvd_pair_flops).
                for a in lists.V[i]:
                    if nsrc[a] > 0:
                        ab = boxes[a]
                        offset = tuple(
                            b.anchor[d] - ab.anchor[d] for d in range(3)
                        )
                        down_v[i] += (
                            2.0 * rsvd_rank(b.level, offset)
                            * n_surf * (md + qd)
                        )
            else:
                down_v[i] += nv * hadamard_flops + qd * fft_flops  # + inverse DFT
        if not has_trg:
            continue
        if b.level >= 1 and b.parent >= 0 and has_down[b.parent]:
            evalw[i] += l2l_flops  # L2L from the parent's density
        if has_down[i]:
            evalw[i] += pinv_flops  # dc2de inversion
        for a in lists.X[i]:
            if nsrc[a] > 0:
                down_x[i] += n_surf * nsrc[a] * fpp
        if b.is_leaf:
            if has_down[i]:
                evalw[i] += ntrg[i] * n_surf * fpp  # L2T
            for a in lists.U[i]:
                if nsrc[a] > 0:
                    down_u[i] += ntrg[i] * nsrc[a] * fpp
            for a in lists.W[i]:
                if nsrc[a] > 0:
                    down_w[i] += ntrg[i] * n_surf * fpp

    return PhaseWork(
        up=up * nrhs, down_u=down_u * nrhs, down_v=down_v * nrhs,
        down_w=down_w * nrhs, down_x=down_x * nrhs, eval=evalw * nrhs,
    )


def communication_volumes(
    tree: Octree,
    lists: InteractionLists,
    kernel: Kernel,
    p: int,
    nrhs: int = 1,
) -> tuple[list[list[int]], list[list[int]], np.ndarray, np.ndarray]:
    """Raw material for the communication model.

    Returns ``(equiv_uses, source_uses, equiv_bytes, source_bytes)``:
    for every box, which *target* boxes consume its upward equivalent
    density (V/W lists) or its ghost source data (U/X lists), plus the
    per-box message sizes in bytes.  ``nrhs`` widens the per-box
    density payloads (equivalent densities and ghost source strengths
    carry one column per right-hand side) while coordinates are sent
    once regardless of the block width — the reason a blocked exchange
    beats ``nrhs`` single-RHS exchanges on latency *and* volume.
    """
    nb = tree.nboxes
    n_surf = n_surface_points(p)
    md = kernel.source_dof
    equiv_uses: list[list[int]] = [[] for _ in range(nb)]
    source_uses: list[list[int]] = [[] for _ in range(nb)]
    for b in tree.boxes:
        i = b.index
        for a in lists.V[i]:
            equiv_uses[a].append(i)
        for a in lists.X[i]:
            source_uses[a].append(i)
        if b.is_leaf:
            for a in lists.W[i]:
                equiv_uses[a].append(i)
            for a in lists.U[i]:
                if a != i:
                    source_uses[a].append(i)
    equiv_bytes = np.full(nb, 8.0 * n_surf * md * nrhs)
    source_bytes = np.array(
        [8.0 * b.nsrc * (3 + md * nrhs) for b in tree.boxes],
        dtype=np.float64,
    )
    return equiv_uses, source_uses, equiv_bytes, source_bytes
