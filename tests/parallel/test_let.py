"""LET usage classification tests."""

import numpy as np

from repro.octree import build_lists, build_tree
from repro.parallel.let import classify_let

from tests.conftest import clustered_cloud


def test_usage_matches_definitions(rng):
    tree = build_tree(clustered_cloud(rng, 500), max_points=20)
    lists = build_lists(tree)
    # pretend this rank owns the targets of the first half of the leaves
    local_trg = np.zeros(tree.nboxes, dtype=bool)
    leaves = tree.leaves()
    for leaf in leaves[: len(leaves) // 2]:
        b = leaf
        while b >= 0:
            local_trg[b] = True
            b = tree.boxes[b].parent

    usage = classify_let(tree, lists, local_trg)

    expected_equiv = np.zeros(tree.nboxes, dtype=bool)
    expected_src = np.zeros(tree.nboxes, dtype=bool)
    for b in np.nonzero(local_trg)[0]:
        for a in lists.V[b]:
            expected_equiv[a] = True
        for a in lists.X[b]:
            expected_src[a] = True
        if tree.boxes[b].is_leaf:
            for a in lists.W[b]:
                expected_equiv[a] = True
            for a in lists.U[b]:
                expected_src[a] = True
    assert np.array_equal(usage.uses_equiv, expected_equiv)
    assert np.array_equal(usage.uses_source, expected_src)


def test_no_targets_no_usage(rng):
    tree = build_tree(clustered_cloud(rng, 300), max_points=20)
    lists = build_lists(tree)
    usage = classify_let(tree, lists, np.zeros(tree.nboxes, dtype=bool))
    assert not usage.uses_equiv.any()
    assert not usage.uses_source.any()


def test_own_leaf_in_own_u_list_usage(rng):
    """A rank using a leaf's U list needs that leaf's own sources too."""
    tree = build_tree(clustered_cloud(rng, 300), max_points=20)
    lists = build_lists(tree)
    local_trg = np.zeros(tree.nboxes, dtype=bool)
    leaf = tree.leaves()[0]
    local_trg[leaf] = True
    usage = classify_let(tree, lists, local_trg)
    assert usage.uses_source[leaf]  # B is in its own U list
