"""Direct O(N^2) summation — the baseline and accuracy oracle.

Section 2 of the paper: "Direct implementation of this summation gives an
O(N^2) algorithm."  Every FMM result in the test suite and the accuracy
benchmarks is validated against this evaluator on subsampled targets.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.util.flops import FlopCounter


def direct_evaluate(
    kernel: Kernel,
    targets: np.ndarray,
    sources: np.ndarray,
    density: np.ndarray,
    block: int = 1024,
    flops: FlopCounter | None = None,
) -> np.ndarray:
    """Compute ``u_i = sum_j G(x_i, y_j) phi_j`` by direct summation.

    Parameters
    ----------
    kernel:
        Any :class:`~repro.kernels.base.Kernel`.
    targets:
        ``(nt, 3)`` evaluation points ``x_i``.
    sources:
        ``(ns, 3)`` source points ``y_j``.
    density:
        ``(ns, source_dof)`` or flat source densities ``phi_j``.
    block:
        Target block size bounding peak memory at ``block * ns`` kernel
        entries.
    flops:
        Optional counter credited with ``nt * ns`` pair evaluations under
        phase ``"direct"``.

    Returns
    -------
    ``(nt, target_dof)`` potentials.
    """
    result = kernel.apply(targets, sources, density, block=block)
    if flops is not None:
        flops.add_pairs(
            "direct", float(targets.shape[0]) * sources.shape[0], kernel.flops_per_pair
        )
    return result


def relative_error(
    approx: np.ndarray, exact: np.ndarray, ord: int | float = 2
) -> float:
    """Relative error ``|approx - exact| / |exact|`` used throughout §4.

    Falls back to the absolute norm when ``exact`` vanishes.
    """
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    denom = np.linalg.norm(exact, ord)
    num = np.linalg.norm(approx - exact, ord)
    return float(num / denom) if denom > 0 else float(num)
