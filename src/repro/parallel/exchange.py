"""The communication stage between the upward and downward passes.

Implements Algorithm 1 of the paper (gather/scatter of leaf source
positions and densities) and its equivalent-density variant ("the
procedure ... is similar to Algorithm 1 with two modifications: (1) we
iterate over all boxes in the LET instead of just the leaf boxes, and
(2) the owner of a box sums up the received upward equivalent densities
to obtain the global upward equivalent densities for that box").

All sends are buffered (MPI_Isend semantics), and the gather and scatter
steps are fully phased — every rank posts all its sends for a step before
receiving — so the protocol is deadlock-free regardless of box ordering.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.simmpi import SimComm


def exchange_source_data(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_src: np.ndarray,
    owner: np.ndarray,
    local_points: dict[int, np.ndarray],
    local_density: dict[int, np.ndarray],
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Algorithm 1: ghost source positions/densities for U/X interactions.

    Parameters
    ----------
    boxes:
        Indices of the (leaf) boxes whose source data must circulate —
        the union over ranks of ``uses_source`` (identical everywhere).
    contrib_src, users_src:
        ``(nranks, nboxes)`` bool matrices.
    owner:
        ``(nboxes,)`` owner rank per box.
    local_points, local_density:
        This rank's local source points / densities per contributed box.

    Returns
    -------
    ``{box: (points, density)}`` with the *global* data for every box
    this rank uses (including boxes it owns or contributes to).
    """
    me = comm.rank
    ndof = None
    for d in local_density.values():
        ndof = d.shape[1] if d.ndim == 2 else 1
        break

    # STEP 1 GATHER — contributors send their local pieces to the owner.
    for b in boxes:
        if contrib_src[me, b] and owner[b] != me:
            comm.send(
                int(owner[b]),
                (local_points[b], local_density[b]),
                tag=("src", int(b)),
                phase="ghost_gather",
            )
    combined: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for b in boxes:
        if owner[b] != me:
            continue
        pieces_p, pieces_d = [], []
        if contrib_src[me, b]:
            pieces_p.append(local_points[b])
            pieces_d.append(local_density[b])
        for r in np.nonzero(contrib_src[:, b])[0]:
            if r == me:
                continue
            pts, dens = comm.recv(int(r), tag=("src", int(b)))
            pieces_p.append(pts)
            pieces_d.append(dens)
        if pieces_p:
            combined[int(b)] = (np.vstack(pieces_p), np.vstack(pieces_d))
        else:
            combined[int(b)] = (
                np.empty((0, 3)),
                np.empty((0, ndof if ndof else 1)),
            )

    # STEP 2 SCATTER — the owner sends the global data to every user.
    for b in boxes:
        if owner[b] == me:
            for r in np.nonzero(users_src[:, b])[0]:
                if r != me:
                    comm.send(
                        int(r), combined[int(b)], tag=("srcg", int(b)),
                        phase="ghost_scatter",
                    )
    result: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for b in boxes:
        if not users_src[me, b]:
            continue
        if owner[b] == me:
            result[int(b)] = combined[int(b)]
        else:
            result[int(b)] = comm.recv(int(owner[b]), tag=("srcg", int(b)))
    return result


def exchange_equiv_densities(
    comm: SimComm,
    boxes: np.ndarray,
    contrib_src: np.ndarray,
    users_equiv: np.ndarray,
    owner: np.ndarray,
    partial_ue: np.ndarray,
    has_ue: np.ndarray,
) -> dict[int, np.ndarray]:
    """Reduce partial upward equivalent densities and scatter to users.

    Every contributor's upward pass produced a *partial* equivalent
    density (linear in its local sources); the owner sums the partials —
    linearity of equations (2.1)/(2.3) makes the sum the exact global
    density — and scatters to users.

    Returns ``{box: global_ue}`` for every box this rank uses.
    """
    me = comm.rank

    # GATHER + reduce at the owner.  A source contributor always has a
    # partial density (the upward pass covers every box with local
    # sources), so the send/recv pairing below is exact; ``has_ue`` only
    # guards against sending uninitialised storage.
    for b in boxes:
        if contrib_src[me, b] and owner[b] != me:
            payload = partial_ue[b] if has_ue[b] else np.zeros_like(partial_ue[b])
            comm.send(int(owner[b]), payload, tag=("ue", int(b)),
                      phase="equiv_gather")
    summed: dict[int, np.ndarray] = {}
    for b in boxes:
        if owner[b] != me:
            continue
        total = partial_ue[b].copy() if (contrib_src[me, b] and has_ue[b]) else None
        for r in np.nonzero(contrib_src[:, b])[0]:
            if r == me:
                continue
            piece = comm.recv(int(r), tag=("ue", int(b)))
            total = piece.copy() if total is None else total + piece
        summed[int(b)] = (
            total if total is not None else np.zeros_like(partial_ue[b])
        )

    # SCATTER to users.
    for b in boxes:
        if owner[b] == me:
            for r in np.nonzero(users_equiv[:, b])[0]:
                if r != me:
                    comm.send(int(r), summed[int(b)], tag=("ueg", int(b)),
                              phase="equiv_scatter")
    result: dict[int, np.ndarray] = {}
    for b in boxes:
        if not users_equiv[me, b]:
            continue
        if owner[b] == me:
            result[int(b)] = summed[int(b)]
        else:
            result[int(b)] = comm.recv(int(owner[b]), tag=("ueg", int(b)))
    return result
