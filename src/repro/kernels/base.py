"""Kernel interface used by the whole package.

The kernel-independence claim of the paper (Section 1) is that the FMM
machinery only requires *kernel evaluations* — no analytic multipole
expansions.  Accordingly the interface below exposes a single mathematical
operation, :meth:`Kernel.matrix`, assembling the dense interaction matrix
between arbitrary target and source point sets, plus metadata the
implementation uses for efficiency (degrees of freedom, homogeneity degree
for operator rescaling across tree levels, flop cost for the performance
model).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Kernel(ABC):
    """A single-layer kernel ``G(x, y)`` of an elliptic PDE in 3D.

    Attributes
    ----------
    name:
        Human-readable identifier (``"laplace"``, ``"stokes"``, ...).
    dim:
        Spatial dimension; all paper experiments are in 3D.
    source_dof / target_dof:
        Components per source density / target potential.  Scalar kernels
        have 1; Stokes and Navier have 3.
    homogeneity:
        Degree ``h`` with ``G(a*x, a*y) = a**h * G(x, y)`` for ``a > 0``,
        or ``None`` for inhomogeneous kernels (modified Laplace).  Used to
        rescale precomputed translation operators between tree levels.
    flops_per_pair:
        Estimated floating-point operations to evaluate the full
        ``target_dof x source_dof`` interaction block of one point pair;
        feeds the TCS-1 performance model.
    translation_invariant:
        ``True`` when ``G(x + t, y + t) = G(x, y)`` for every shift ``t``,
        as for all constant-coefficient elliptic kernels.  The planned
        evaluator exploits this to share one origin-centered surface per
        tree level; kernels that declare ``False`` are evaluated with the
        per-box path instead.
    """

    name: str = "abstract"
    dim: int = 3
    source_dof: int = 1
    target_dof: int = 1
    homogeneity: float | None = None
    flops_per_pair: int = 0
    translation_invariant: bool = True

    @abstractmethod
    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """Dense interaction matrix between point sets.

        Parameters
        ----------
        targets:
            ``(nt, 3)`` evaluation points.
        sources:
            ``(ns, 3)`` singularity locations.

        Returns
        -------
        ``(nt * target_dof, ns * source_dof)`` matrix ``K`` such that the
        potentials are ``u = K @ phi`` with point-major component ordering
        (row ``t * target_dof + i`` is component ``i`` at target ``t``).
        Coincident points (``x == y``) contribute zero, the standard
        convention for excluding self-interaction in particle sums.
        """

    def matrix_local(
        self, targets: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """:meth:`matrix` for *box-local* coordinate frames.

        The planned evaluator shifts every interaction block into the
        frame of its box (coordinates of order the box half-width), which
        lets kernels substitute cancellation-sensitive fast paths — e.g.
        assembling ``r^2 = |x|^2 + |y|^2 - 2 x.y`` with one GEMM instead
        of materialising the ``(nt, ns, 3)`` displacement tensor.  The
        default is the exact reference implementation.
        """
        return self.matrix(targets, sources)

    def apply(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        density: np.ndarray,
        block: int = 2048,
    ) -> np.ndarray:
        """Matrix-free evaluation ``u = K @ phi`` blocked over targets.

        Avoids materialising the full ``O(nt * ns)`` matrix; used for the
        direct near-field (U-list) interactions and the O(N^2) baseline.

        Parameters
        ----------
        density:
            ``(ns, source_dof)`` or flat ``(ns * source_dof,)`` densities.

        Returns
        -------
        ``(nt, target_dof)`` potentials.
        """
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        sources = np.ascontiguousarray(sources, dtype=np.float64)
        phi = np.asarray(density, dtype=np.float64).reshape(-1)
        if phi.shape[0] != sources.shape[0] * self.source_dof:
            raise ValueError(
                f"density has {phi.shape[0]} entries, expected "
                f"{sources.shape[0] * self.source_dof}"
            )
        out = np.empty(targets.shape[0] * self.target_dof, dtype=np.float64)
        for start in range(0, targets.shape[0], block):
            stop = min(start + block, targets.shape[0])
            sub = self.matrix(targets[start:stop], sources)
            out[start * self.target_dof : stop * self.target_dof] = sub @ phi
        return out.reshape(targets.shape[0], self.target_dof)

    # -- helpers shared by the concrete kernels ---------------------------

    @staticmethod
    def _displacements(
        targets: np.ndarray, sources: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pairwise displacement vectors and safe inverse distances.

        Returns ``(diff, inv_r)`` with ``diff`` of shape ``(nt, ns, 3)``
        and ``inv_r`` of shape ``(nt, ns)``; ``inv_r`` is 0 where the pair
        is coincident so singular self-pairs drop out of all kernels.
        """
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[1] != 3:
            raise ValueError(f"targets must be (nt, 3), got {targets.shape}")
        if sources.ndim != 2 or sources.shape[1] != 3:
            raise ValueError(f"sources must be (ns, 3), got {sources.shape}")
        diff = targets[:, None, :] - sources[None, :, :]
        r2 = np.einsum("tsd,tsd->ts", diff, diff)
        with np.errstate(divide="ignore"):
            inv_r = np.where(r2 > 0.0, 1.0 / np.sqrt(r2), 0.0)
        return diff, inv_r

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))
