"""Exhaustive schedule-space model checking (DPOR-style explorer).

At P in {2, 3} the explorer must visit the *entire* interleaving space
of the static communication IR: certify deadlock-freedom and
persistence at every reachable state, count the exact number of
interleavings, and find seeded schedule defects that sampled dynamic
runs can miss.  The bitwise harness complements the model-level proof
end to end.
"""

import numpy as np
import pytest

from repro.analysis.commcheck_static import seed_swapped_post_wait
from repro.analysis.commir import extract_comm_ir, static_plan_inputs
from repro.analysis.dpor import bitwise_determinism, explore
from repro.cli import main as cli_main
from repro.core.fmm import FMMOptions
from repro.kernels import LaplaceKernel

OPTS = FMMOptions(p=4)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(0)
    return rng.uniform(-1.0, 1.0, (120, 3))


class TestExhaustiveExploration:
    @pytest.mark.parametrize("nranks", [2, 3])
    @pytest.mark.parametrize("scheme", ["tree", "flat"])
    def test_full_space_certifies(self, cloud, nranks, scheme):
        inputs = static_plan_inputs(cloud, nranks, OPTS)
        ir = extract_comm_ir(inputs, scheme=scheme)
        report = explore(ir)
        assert report.ok, report.summary()
        assert not report.truncated
        assert report.deadlocks == []
        assert report.persistence_violations == []
        assert report.nclasses == 1
        assert report.ninterleavings > 0
        assert report.nstates > 0
        assert "certified" in report.summary()

    def test_interleaving_count_exceeds_what_could_be_run(self, cloud):
        """The DP count covers astronomically more schedules than any
        sampled perturbation campaign — that is the point."""
        inputs = static_plan_inputs(cloud, 3, OPTS)
        ir = extract_comm_ir(inputs, scheme="tree")
        report = explore(ir)
        assert report.ninterleavings > 10**6

    def test_seeded_deadlock_found_exhaustively(self, cloud):
        """A post/wait swap deadlocks only under *some* interleavings;
        the exhaustive explorer must find it at P=3."""
        inputs = static_plan_inputs(cloud, 3, OPTS)
        ir = extract_comm_ir(inputs, scheme="tree")
        bad = seed_swapped_post_wait(ir)
        report = explore(bad)
        assert not report.ok
        assert report.deadlocks
        assert "FAILED" in report.summary()
        # The clean IR of the same inputs certifies — the defect, not
        # the workload, is what the explorer flags.
        assert explore(ir).ok

    def test_state_budget_reports_truncation(self, cloud):
        inputs = static_plan_inputs(cloud, 3, OPTS)
        ir = extract_comm_ir(inputs, scheme="flat")
        report = explore(ir, max_states=5)
        assert report.truncated
        assert not report.ok
        assert "INCOMPLETE" in report.summary()


class TestBitwiseDeterminism:
    def test_identical_potentials_across_schedules(self, cloud):
        kernel = LaplaceKernel()
        density = np.random.default_rng(1).random(
            (cloud.shape[0], kernel.source_dof)
        )
        identical, diff = bitwise_determinism(
            kernel, cloud, density, OPTS, 2, seeds=(0, 1, 2),
        )
        assert identical
        assert diff == 0.0


class TestCLI:
    def test_empty_ranks_exits_2(self, capsys):
        assert cli_main(["dpor", "--ranks", ""]) == 2
        assert "nothing to explore" in capsys.readouterr().out

    def test_empty_schemes_exits_2(self):
        assert cli_main(["dpor", "--schemes", ""]) == 2

    def test_nonpositive_n_exits_2(self, capsys):
        assert cli_main(["dpor", "--n", "0"]) == 2
        assert "positive point count" in capsys.readouterr().out

    def test_small_exploration_certifies(self, capsys, tmp_path):
        json_path = tmp_path / "dpor.json"
        rc = cli_main([
            "dpor", "--n", "60", "--ranks", "2", "--schemes", "tree",
            "--schedules", "2", "--json", str(json_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "certified" in out
        assert "bitwise determinism" in out
        assert json_path.exists()
