"""Unit tests of the parallel evaluator's building blocks."""

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.core.precompute import OperatorCache
from repro.kernels import LaplaceKernel
from repro.octree import build_tree
from repro.parallel.pfmm import _octant, _upward_local

from tests.conftest import clustered_cloud


class TestOctant:
    def test_all_children_distinct(self, rng):
        tree = build_tree(rng.uniform(-1, 1, (200, 3)), max_points=20)
        for b in tree.boxes:
            if b.is_leaf:
                continue
            octants = {_octant(tree.boxes[c]) for c in b.children}
            assert len(octants) == len(b.children)
            assert all(0 <= o < 8 for o in octants)

    def test_matches_anchor_parity(self, rng):
        tree = build_tree(rng.uniform(-1, 1, (200, 3)), max_points=20)
        for b in tree.boxes:
            if b.parent < 0:
                continue
            o = _octant(b)
            assert (o & 1) == (b.anchor[0] & 1)
            assert ((o >> 1) & 1) == (b.anchor[1] & 1)
            assert ((o >> 2) & 1) == (b.anchor[2] & 1)


class TestUpwardLocal:
    def test_full_data_matches_sequential_densities(self, rng):
        """One rank holding everything: partial densities are the global
        equivalent densities the sequential evaluator would build."""
        kernel = LaplaceKernel()
        pts = clustered_cloud(rng, 400)
        phi = rng.standard_normal((400, 1))
        tree = build_tree(pts, max_points=25)
        cache = OperatorCache(kernel, 4, tree.root_side)
        ue, has_ue = _upward_local(tree, kernel, cache, phi)
        # compare a leaf's density against a direct S2M computation
        leaf = tree.leaves()[0]
        b = tree.boxes[leaf]
        K = kernel.matrix(
            cache.up_check_points(tree.center(leaf), b.level),
            tree.src_points(leaf),
        )
        expected = cache.uc2ue(b.level) @ (
            K @ phi[tree.src_indices(leaf)].reshape(-1)
        )
        assert np.allclose(ue[leaf], expected)
        # every box with sources has a density
        for b in tree.boxes:
            assert has_ue[b.index] == (b.nsrc > 0)

    def test_linearity_of_partials(self, rng):
        """Partial densities are linear in the local sources — the
        property the owner-side summation relies on."""
        kernel = LaplaceKernel()
        pts = clustered_cloud(rng, 300)
        tree = build_tree(pts, max_points=25)
        cache = OperatorCache(kernel, 4, tree.root_side)
        p1 = rng.standard_normal((300, 1))
        p2 = rng.standard_normal((300, 1))
        ue1, _ = _upward_local(tree, kernel, cache, p1)
        ue2, _ = _upward_local(tree, kernel, cache, p2)
        ue12, _ = _upward_local(tree, kernel, cache, p1 + p2)
        assert np.allclose(ue12, ue1 + ue2, atol=1e-12)
