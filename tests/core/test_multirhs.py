"""Multi-RHS batched applies: column parity with single-RHS applies.

The tentpole claim of the batched-density path: stacking ``nrhs``
densities into one apply changes the schedule (nrhs-fold wider GEMMs,
pseudo-box FFT rows) but not the mathematics — every column of the
stacked result matches the corresponding single-RHS apply to strict
round-off (≤1e-12), on both M2L modes and on the per-box reference
path, and the flat-block matvec interface is a pure reshape of the
stacked one.
"""

import numpy as np
import pytest

from repro.core.evaluator import coerce_density
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error

from tests.conftest import clustered_cloud, uniform_cloud

KERNELS = {
    "laplace": LaplaceKernel(),
    "stokes": StokesKernel(mu=0.7),
}


def _column_parity(op, rng, n, dof, nrhs):
    block = rng.standard_normal((n, dof, nrhs))
    out = op.apply(block)
    assert out.shape[2] == nrhs
    for r in range(nrhs):
        single = op.apply(np.ascontiguousarray(block[:, :, r]))
        assert single.ndim == 2
        assert relative_error(out[:, :, r], single) < 1e-12


@pytest.mark.parametrize("kname", ["laplace", "stokes"])
@pytest.mark.parametrize("m2l", ["fft", "dense"])
def test_planned_columns_match_single_rhs(rng, kname, m2l):
    kern = KERNELS[kname]
    pts = clustered_cloud(rng, 700)
    op = KIFMM(kern, FMMOptions(p=4, max_points=30, m2l=m2l)).setup(pts)
    _column_parity(op, rng, 700, kern.source_dof, 5)


@pytest.mark.parametrize("kname", ["laplace", "stokes"])
def test_naive_path_loops_columns(rng, kname):
    kern = KERNELS[kname]
    pts = uniform_cloud(rng, 400)
    op = KIFMM(kern, FMMOptions(p=4, max_points=30, plan="naive")).setup(pts)
    _column_parity(op, rng, 400, kern.source_dof, 3)


def test_block_matvec_is_reshape_of_stacked_apply(rng):
    kern = KERNELS["stokes"]
    pts = uniform_cloud(rng, 500)
    op = KIFMM(kern, FMMOptions(p=4, max_points=35)).setup(pts)
    block = rng.standard_normal((500, 3, 4))
    out = op.apply(block)
    mv = op.matvec(block.reshape(1500, 4))
    assert mv.shape == (1500, 4)
    assert np.array_equal(mv, out.reshape(1500, 4))
    flat_single = op.matvec(block[:, :, 0].ravel())
    assert flat_single.shape == (1500,)
    assert relative_error(flat_single, mv[:, 0]) < 1e-12


def test_single_rhs_result_shapes_unchanged(rng):
    pts = uniform_cloud(rng, 300)
    op = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=30)).setup(pts)
    assert op.apply(rng.standard_normal((300, 1))).shape == (300, 1)
    assert op.matvec(rng.standard_normal(300)).shape == (300,)


def test_sanitized_multirhs_apply(rng):
    pts = uniform_cloud(rng, 400)
    op = KIFMM(
        LaplaceKernel(), FMMOptions(p=4, max_points=30, sanitize=True)
    ).setup(pts)
    block = rng.standard_normal((400, 1, 4))
    out = op.apply(block)
    assert np.isfinite(out).all()


def test_repeated_block_applies_bitwise_identical(rng):
    pts = clustered_cloud(rng, 500)
    op = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=30)).setup(pts)
    block = rng.standard_normal((500, 1, 3))
    assert np.array_equal(op.apply(block), op.apply(block))


def test_varying_nrhs_across_applies_reuses_pool(rng):
    """The grow-only BufferPool serves different block widths in turn."""
    pts = uniform_cloud(rng, 400)
    op = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=30)).setup(pts)
    wide = op.apply(rng.standard_normal((400, 1, 8)))
    narrow_block = rng.standard_normal((400, 1, 2))
    narrow = op.apply(narrow_block)
    assert wide.shape == (400, 1, 8) and narrow.shape == (400, 1, 2)
    single = op.apply(np.ascontiguousarray(narrow_block[:, :, 1]))
    assert relative_error(narrow[:, :, 1], single) < 1e-12


def test_coerce_density_forms():
    n, dof = 10, 3
    flat = np.arange(n * dof, dtype=float)
    phi, nrhs, single = coerce_density(flat, n, dof)
    assert phi.shape == (n, dof, 1) and nrhs == 1 and single
    phi, nrhs, single = coerce_density(flat.reshape(n, dof), n, dof)
    assert phi.shape == (n, dof, 1) and nrhs == 1 and single
    block = np.zeros((n * dof, 4))
    phi, nrhs, single = coerce_density(block, n, dof)
    assert phi.shape == (n, dof, 4) and nrhs == 4 and not single
    assert phi.base is block  # reshaped view, no copy
    stacked = np.zeros((n, dof, 2))
    phi, nrhs, single = coerce_density(stacked, n, dof)
    assert phi is stacked and nrhs == 2 and not single
    with pytest.raises(ValueError, match="density shape"):
        coerce_density(np.zeros((n + 1, dof)), n, dof)


def test_stacked_laplace_2d_block_form(rng):
    """(N, nrhs) with dof=1 reads as a flat block of nrhs densities."""
    pts = uniform_cloud(rng, 300)
    op = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=30)).setup(pts)
    block = rng.standard_normal((300, 6))
    out = op.matvec(block)
    assert out.shape == (300, 6)
    for r in range(6):
        assert relative_error(out[:, r], op.matvec(block[:, r])) < 1e-12
