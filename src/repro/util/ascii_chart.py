"""Plain-text charts for the figure benchmarks.

The paper's Figures 4.2/4.3 are stacked bar + line charts; this
repository renders them as terminal bar charts so the benchmark output
is self-contained (no plotting dependencies).
"""

from __future__ import annotations

from typing import Sequence


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    lines = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    vmax = max(max(values), 0.0)
    label_w = max(len(str(lb)) for lb in labels)
    for lb, v in zip(labels, values):
        n = 0 if vmax == 0 else int(round(width * max(v, 0.0) / vmax))
        lines.append(
            f"{str(lb).rjust(label_w)} | {'#' * n}{' ' * (width - n)} "
            f"{v:.4g}{unit}"
        )
    return "\n".join(lines)


def stacked_chart(
    labels: Sequence[object],
    series: dict[str, Sequence[float]],
    width: int = 60,
    title: str | None = None,
) -> str:
    """Stacked horizontal bars (one row per label, one glyph per series).

    The analogue of the paper's per-phase stacked bars: each series gets
    a distinct fill character, proportional to its share of the row.
    """
    glyphs = "#=+*o.~^"
    names = list(series)
    if len(names) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} series supported")
    for name in names:
        if len(series[name]) != len(labels):
            raise ValueError(f"series {name!r} length mismatch")
    rows = [
        [float(series[name][i]) for name in names] for i in range(len(labels))
    ]
    totals = [sum(r) for r in rows]
    vmax = max(totals) if totals else 0.0
    label_w = max((len(str(lb)) for lb in labels), default=1)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{g}={n}" for g, n in zip(glyphs, names))
    lines.append(f"legend: {legend}")
    for lb, row, total in zip(labels, rows, totals):
        bar = ""
        if vmax > 0:
            for g, v in zip(glyphs, row):
                bar += g * int(round(width * v / vmax))
        lines.append(
            f"{str(lb).rjust(label_w)} | {bar.ljust(width)} {total:.4g}"
        )
    return "\n".join(lines)
