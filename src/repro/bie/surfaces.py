"""Rigid-body surface discretisations for the boundary integral solver.

Three surface types share the quadrature interface (``points``,
``weights``, ``normals``, ``translate``, ``rotate``): spheres, ellipsoids
(with exact area-distortion quadrature weights from the sphere map), and
composites — unions of surfaces moving as one rigid body, used to build
the stirring propeller of the Figure 4.1 scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.spheres import sample_sphere


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about ``axis`` by ``angle`` radians."""
    axis = np.asarray(axis, dtype=np.float64)
    norm = np.linalg.norm(axis)
    if norm == 0:
        return np.eye(3)
    k = axis / norm
    K = np.array(
        [[0, -k[2], k[1]], [k[2], 0, -k[0]], [-k[1], k[0], 0]]
    )
    return np.eye(3) + np.sin(angle) * K + (1 - np.cos(angle)) * (K @ K)


@dataclass
class SphereSurface:
    """Quadrature discretisation of a sphere surface.

    Quasi-uniform Fibonacci sampling with equal quadrature weights
    ``4 pi R^2 / n`` — the simple Nystrom rule the convergence tests
    exercise.
    """

    center: np.ndarray
    radius: float
    n: int
    points: np.ndarray = field(init=False)
    weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        if self.n < 4:
            raise ValueError(f"need at least 4 quadrature points, got {self.n}")
        self.center = np.asarray(self.center, dtype=np.float64)
        self.points = sample_sphere(self.center, self.radius, self.n,
                                    method="fibonacci")
        area = 4.0 * np.pi * self.radius**2
        self.weights = np.full(self.n, area / self.n)

    def translate(self, displacement: np.ndarray) -> None:
        """Move the surface rigidly (used by the time stepper)."""
        displacement = np.asarray(displacement, dtype=np.float64)
        self.center = self.center + displacement
        self.points = self.points + displacement

    def rotate(self, R: np.ndarray) -> None:
        """Rotate rigidly about the body center."""
        self.points = self.center + (self.points - self.center) @ np.asarray(R).T

    @property
    def normals(self) -> np.ndarray:
        """Outward unit normals at the quadrature points."""
        return (self.points - self.center) / self.radius


@dataclass
class EllipsoidSurface:
    """Quadrature discretisation of an ellipsoid with semi-axes (a, b, c).

    Points come from mapping a Fibonacci sphere sampling through
    ``D = diag(a, b, c)``; each node's quadrature weight carries the
    exact local area distortion of that map,
    ``dS = A_sphere * |det D| * |D^{-T} u|`` for unit-sphere point ``u``,
    and the outward normal is ``D^{-T} u`` normalised.
    """

    center: np.ndarray
    semi_axes: np.ndarray
    n: int
    points: np.ndarray = field(init=False)
    weights: np.ndarray = field(init=False)
    _normals: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64)
        self.semi_axes = np.asarray(self.semi_axes, dtype=np.float64)
        if self.semi_axes.shape != (3,) or np.any(self.semi_axes <= 0):
            raise ValueError(
                f"semi_axes must be 3 positive values, got {self.semi_axes}"
            )
        if self.n < 4:
            raise ValueError(f"need at least 4 quadrature points, got {self.n}")
        unit = sample_sphere(np.zeros(3), 1.0, self.n, method="fibonacci")
        d = self.semi_axes
        self.points = self.center + unit * d
        dinv_u = unit / d  # D^{-T} u with D diagonal
        stretch = np.linalg.norm(dinv_u, axis=1)
        area_sphere = 4.0 * np.pi / self.n
        self.weights = area_sphere * float(np.prod(d)) * stretch
        self._normals = dinv_u / stretch[:, None]

    def translate(self, displacement: np.ndarray) -> None:
        displacement = np.asarray(displacement, dtype=np.float64)
        self.center = self.center + displacement
        self.points = self.points + displacement

    def rotate(self, R: np.ndarray) -> None:
        R = np.asarray(R, dtype=np.float64)
        self.points = self.center + (self.points - self.center) @ R.T
        self._normals = self._normals @ R.T

    @property
    def normals(self) -> np.ndarray:
        return self._normals


class CompositeSurface:
    """A union of surfaces moving as one rigid body.

    Used to assemble the stirring propeller (several elongated
    ellipsoid blades around a hub) of the Figure 4.1 scenario.
    """

    def __init__(self, members: list, center: np.ndarray) -> None:
        if not members:
            raise ValueError("composite surface needs at least one member")
        self.members = members
        self.center = np.asarray(center, dtype=np.float64)

    @property
    def n(self) -> int:
        return sum(m.n for m in self.members)

    @property
    def points(self) -> np.ndarray:
        return np.vstack([m.points for m in self.members])

    @property
    def weights(self) -> np.ndarray:
        return np.concatenate([m.weights for m in self.members])

    @property
    def normals(self) -> np.ndarray:
        return np.vstack([m.normals for m in self.members])

    def translate(self, displacement: np.ndarray) -> None:
        displacement = np.asarray(displacement, dtype=np.float64)
        self.center = self.center + displacement
        for m in self.members:
            m.translate(displacement)

    def rotate(self, R: np.ndarray) -> None:
        """Rotate the whole assembly about the *composite* center."""
        R = np.asarray(R, dtype=np.float64)
        for m in self.members:
            # move the member center around the assembly center ...
            offset = m.center - self.center
            m.translate(R @ offset - offset)
            # ... and spin the member about its own center
            m.rotate(R)


def propeller_surface(
    center: np.ndarray,
    nblades: int = 3,
    blade_length: float = 0.8,
    blade_width: float = 0.24,
    hub_radius: float = 0.18,
    n_per_blade: int = 120,
    n_hub: int = 80,
) -> CompositeSurface:
    """The Figure 4.1 stirrer: a hub with radial ellipsoid blades.

    Blades are elongated ellipsoids with centers on a circle in the x-y
    plane, long axis pointing radially outward.
    """
    if nblades < 1:
        raise ValueError(f"need at least one blade, got {nblades}")
    center = np.asarray(center, dtype=np.float64)
    members: list = [SphereSurface(center, hub_radius, n_hub)]
    for k in range(nblades):
        angle = 2.0 * np.pi * k / nblades
        direction = np.array([np.cos(angle), np.sin(angle), 0.0])
        blade_center = center + direction * (hub_radius + blade_length / 2.0)
        blade = EllipsoidSurface(
            blade_center,
            np.array([blade_length / 2.0, blade_width, blade_width]),
            n_per_blade,
        )
        blade.rotate(rotation_matrix(np.array([0.0, 0.0, 1.0]), angle))
        members.append(blade)
    return CompositeSurface(members, center)


@dataclass
class RigidBody:
    """A rigid body: a surface plus its kinematic state.

    ``prescribed`` bodies move with given velocity/angular velocity (the
    stirring propeller of Figure 4.1); free bodies get their velocity
    from a force balance.  ``surface`` may be a :class:`SphereSurface`,
    :class:`EllipsoidSurface` or :class:`CompositeSurface`.
    """

    surface: object
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    angular_velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    prescribed: bool = False

    def surface_velocity(self) -> np.ndarray:
        """Rigid velocity field ``U + Omega x (x - c)`` at surface points."""
        rel = self.surface.points - self.surface.center
        return self.velocity + np.cross(
            np.broadcast_to(self.angular_velocity, rel.shape), rel
        )
