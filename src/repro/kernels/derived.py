"""Derived kernels: gradients (target side) and dipoles (source side).

The KIFMM machinery separates three kernel roles (as the reference
kifmm3d implementation does):

- the *translation* kernel builds and moves equivalent densities;
- the *source* kernel maps the user's source densities to check
  potentials (S2M and the direct X-list evaluations);
- the *target* kernel maps equivalent densities (or raw sources, for the
  U and W lists) to the user's target quantity.

Because an upward equivalent density is an ordinary single-layer density
of the translation kernel, any source distribution whose far potential
satisfies the same PDE can feed it — e.g. *dipoles* (the double-layer
densities of boundary integral formulations, refs [6], [19], [26] of the
paper) — and any linear functional of the potential can be read out at
the targets — e.g. the *gradient* (forces in molecular dynamics).

This module provides those derived kernels for the Laplace and modified
Laplace equations:

- ``LaplaceGradientKernel``:  ``-grad_x 1/(4 pi r)`` (target_dof=3)
- ``LaplaceDipoleKernel``:    ``grad_y 1/(4 pi r) . d`` (source_dof=3;
  the density is the dipole vector ``d_j = n_j * strength_j``)
- ``ModifiedLaplaceGradientKernel`` / ``ModifiedLaplaceDipoleKernel``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

_FOUR_PI = 4.0 * np.pi


class LaplaceGradientKernel(Kernel):
    """Gradient of the Laplace single-layer kernel at the target.

    ``K_i(x, y) = d/dx_i [1/(4 pi r)] = -r_i / (4 pi r^3)``.
    """

    name = "laplace_gradient"
    source_dof = 1
    target_dof = 3
    homogeneity = -2.0
    flops_per_pair = 20

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, inv_r = self._displacements(targets, sources)
        nt, ns = inv_r.shape
        grad = -diff * (inv_r**3)[:, :, None] / _FOUR_PI
        return grad.transpose(0, 2, 1).reshape(nt * 3, ns)


class LaplaceDipoleKernel(Kernel):
    """Laplace dipole (double-layer style) source kernel.

    The density is the dipole vector ``d``; the potential is
    ``u(x) = d . grad_y [1/(4 pi r)] = d . r / (4 pi r^3)``
    with ``r = x - y``.
    """

    name = "laplace_dipole"
    source_dof = 3
    target_dof = 1
    homogeneity = -2.0
    flops_per_pair = 20

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, inv_r = self._displacements(targets, sources)
        nt, ns = inv_r.shape
        block = diff * (inv_r**3)[:, :, None] / _FOUR_PI
        return block.reshape(nt, ns * 3)


class ModifiedLaplaceGradientKernel(Kernel):
    """Gradient of ``exp(-lam r)/(4 pi r)`` at the target.

    ``K_i = -r_i (1 + lam r) exp(-lam r) / (4 pi r^3)``.
    """

    name = "modified_laplace_gradient"
    source_dof = 1
    target_dof = 3
    homogeneity = None
    flops_per_pair = 34

    def __init__(self, lam: float = 1.0) -> None:
        if lam <= 0:
            raise ValueError(f"screening parameter must be positive, got {lam}")
        self.lam = float(lam)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, inv_r = self._displacements(targets, sources)
        nt, ns = inv_r.shape
        with np.errstate(divide="ignore"):
            r = np.where(inv_r > 0.0, 1.0 / inv_r, 0.0)
        factor = -(1.0 + self.lam * r) * np.exp(-self.lam * r) * inv_r**3
        grad = diff * factor[:, :, None] / _FOUR_PI
        return grad.transpose(0, 2, 1).reshape(nt * 3, ns)

    def __repr__(self) -> str:
        return f"ModifiedLaplaceGradientKernel(lam={self.lam})"


class ModifiedLaplaceDipoleKernel(Kernel):
    """Screened dipole source kernel: ``d . grad_y [exp(-lam r)/(4 pi r)]``."""

    name = "modified_laplace_dipole"
    source_dof = 3
    target_dof = 1
    homogeneity = None
    flops_per_pair = 34

    def __init__(self, lam: float = 1.0) -> None:
        if lam <= 0:
            raise ValueError(f"screening parameter must be positive, got {lam}")
        self.lam = float(lam)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, inv_r = self._displacements(targets, sources)
        nt, ns = inv_r.shape
        with np.errstate(divide="ignore"):
            r = np.where(inv_r > 0.0, 1.0 / inv_r, 0.0)
        factor = (1.0 + self.lam * r) * np.exp(-self.lam * r) * inv_r**3
        block = diff * factor[:, :, None] / _FOUR_PI
        return block.reshape(nt, ns * 3)

    def __repr__(self) -> str:
        return f"ModifiedLaplaceDipoleKernel(lam={self.lam})"


def gradient_kernel_for(kernel: Kernel) -> Kernel:
    """The gradient (target-side) kernel matching a translation kernel."""
    from repro.kernels.laplace import LaplaceKernel
    from repro.kernels.modified_laplace import ModifiedLaplaceKernel

    if isinstance(kernel, LaplaceKernel):
        return LaplaceGradientKernel()
    if isinstance(kernel, ModifiedLaplaceKernel):
        return ModifiedLaplaceGradientKernel(lam=kernel.lam)
    raise ValueError(f"no gradient kernel registered for {kernel.name!r}")


def dipole_kernel_for(kernel: Kernel) -> Kernel:
    """The dipole (source-side) kernel matching a translation kernel."""
    from repro.kernels.laplace import LaplaceKernel
    from repro.kernels.modified_laplace import ModifiedLaplaceKernel

    if isinstance(kernel, LaplaceKernel):
        return LaplaceDipoleKernel()
    if isinstance(kernel, ModifiedLaplaceKernel):
        return ModifiedLaplaceDipoleKernel(lam=kernel.lam)
    raise ValueError(f"no dipole kernel registered for {kernel.name!r}")
