"""Plain-text table rendering in the style of the paper's Tables 4.1–4.3."""

from __future__ import annotations

from typing import Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0.00"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.2f}" if abs(value) >= 0.01 else f"{value:.2e}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Every cell is formatted with :func:`_fmt`; columns are right-aligned the
    way the paper typesets its numeric scalability tables.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in cells)) if cells else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
