"""Owner assignment tests (the Section 3.2 three-step procedure)."""

import numpy as np
import pytest

from repro.parallel.owners import assign_owners, gather_contributors
from repro.parallel.simmpi import PerRank, run_spmd


class TestAssignOwners:
    def test_sole_contributor_owns(self):
        contrib = np.array(
            [[True, False, True], [False, True, True]]
        )  # 2 ranks, 3 boxes
        owner = assign_owners(contrib)
        assert owner[0] == 0
        assert owner[1] == 1
        assert owner[2] in (0, 1)

    def test_owner_is_a_contributor(self, rng):
        contrib = rng.random((4, 50)) < 0.4
        contrib[0, contrib.sum(axis=0) == 0] = True  # no orphan boxes
        owner = assign_owners(contrib)
        for b in range(50):
            assert contrib[owner[b], b]

    def test_deterministic(self, rng):
        contrib = rng.random((3, 30)) < 0.5
        contrib[0] = True
        assert np.array_equal(assign_owners(contrib), assign_owners(contrib))

    def test_balances_load(self):
        """All-shared boxes spread across contributors."""
        contrib = np.ones((4, 100), dtype=bool)
        owner = assign_owners(contrib)
        counts = np.bincount(owner, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_orphan_box_falls_to_rank_zero(self):
        contrib = np.zeros((2, 1), dtype=bool)
        assert assign_owners(contrib)[0] == 0


def _assign_owners_reference(contrib: np.ndarray) -> np.ndarray:
    """The pre-vectorisation per-box loop, kept as the semantics pin."""
    nranks, nboxes = contrib.shape
    owner = np.full(nboxes, -1, dtype=np.int64)
    load = np.zeros(nranks, dtype=np.int64)
    ncontrib = contrib.sum(axis=0)
    for b in np.nonzero(ncontrib == 1)[0]:
        r = int(np.argmax(contrib[:, b]))
        owner[b] = r
        load[r] += 1
    for b in np.nonzero(ncontrib != 1)[0]:
        ranks = np.nonzero(contrib[:, b])[0]
        if len(ranks) == 0:
            owner[b] = 0
            continue
        r = int(ranks[np.argmin(load[ranks])])
        owner[b] = r
        load[r] += 1
    return owner


def _adversarial_matrices(nranks: int, rng) -> list[np.ndarray]:
    """Contributor matrices chosen to stress tie-breaking and balance."""
    nb = 4 * nranks + 3
    mats = []
    # every box shared by every rank: pure load-balancing ties
    mats.append(np.ones((nranks, nb), dtype=bool))
    # nested rank intervals, the Morton tree-top shape: box j shared by
    # ranks [0, nranks >> (j % levels)]
    nested = np.zeros((nranks, nb), dtype=bool)
    for j in range(nb):
        width = max(1, nranks >> (j % (nranks.bit_length())))
        nested[:width, j] = True
    mats.append(nested)
    # checkerboard: alternating contributor parity plus a full first rank
    checker = np.zeros((nranks, nb), dtype=bool)
    checker[np.arange(nranks)[:, None] % 2
            == np.arange(nb)[None, :] % 2] = True
    checker[0] = True
    mats.append(checker)
    # heavily skewed random: rank 0 contributes everywhere, others rarely
    skew = rng.random((nranks, nb)) < 0.05
    skew[0] = True
    mats.append(skew)
    # sparse random with orphan boxes left in deliberately
    mats.append(rng.random((nranks, nb)) < 0.3)
    return mats


class TestAssignOwnersDeterminism:
    """The assignment every rank computes must be a pure function of the
    replicated contributor matrix — across repeats, copies and layouts —
    and must match the sequential reference loop exactly."""

    @pytest.mark.parametrize("nranks", [8, 16, 64])
    def test_adversarial_matrices(self, nranks, rng):
        for contrib in _adversarial_matrices(nranks, rng):
            a = assign_owners(contrib)
            b = assign_owners(contrib.copy(order="F"))
            assert np.array_equal(a, b)
            assert np.array_equal(a, _assign_owners_reference(contrib))
            shared = contrib.sum(axis=0) > 0
            for bx in np.nonzero(shared)[0]:
                assert contrib[a[bx], bx]
            assert np.all(a[~shared] == 0)

    @pytest.mark.parametrize("nranks", [8, 16, 64])
    def test_all_shared_balance(self, nranks):
        contrib = np.ones((nranks, 10 * nranks), dtype=bool)
        counts = np.bincount(assign_owners(contrib), minlength=nranks)
        assert counts.max() - counts.min() <= 1


class TestGatherContributors:
    def test_matrices_identical_on_all_ranks(self):
        def main(comm):
            local_src = np.array([comm.rank == 0, True, False])
            local_trg = np.array([True, comm.rank == 1, False])
            return gather_contributors(comm, local_src, local_trg)

        results = run_spmd(2, main)
        src0, trg0 = results[0]
        src1, trg1 = results[1]
        assert np.array_equal(src0, src1)
        assert np.array_equal(trg0, trg1)
        assert src0[0, 0] and not src0[1, 0]
        assert trg0[0, 0] and trg0[1, 0]
