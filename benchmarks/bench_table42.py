"""Table 4.2 — isogranular scalability, 200K particles per processor.

Laplace uniform (512 spheres), Stokes uniform, Stokes non-uniform
(corner clusters), P = 1..2048.  For each P the model tree is built at
``min(200K * P, cap)`` particles and extrapolated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import corner_clusters, sphere_grid_points
from repro.kernels import LaplaceKernel, StokesKernel
from repro.perfmodel import TCS1
from repro.perfmodel.experiments import isogranular_scaling

from benchmarks.conftest import print_comparison
from benchmarks.paper_data import TABLE41_HEADERS, TABLE42

GRAIN = 200_000
P_LIST = (1, 4, 16, 64, 256, 1024, 2048)

_CASES = {
    "laplace_uniform": (LaplaceKernel(), "spheres"),
    "stokes_uniform": (StokesKernel(), "spheres"),
    "stokes_nonuniform": (StokesKernel(), "corners"),
}


def _workload(name):
    if name == "spheres":
        return lambda n: sphere_grid_points(n)
    return lambda n: corner_clusters(n, np.random.default_rng(42))


def _model_rows(kernel, workload, cap):
    reports = isogranular_scaling(
        kernel, _workload(workload), GRAIN, P_LIST,
        p=6, max_points=60, m2l="fft", machine=TCS1, model_cap=cap,
    )
    return [
        (r.P, r.total, round(r.ratio, 1), r.comm, r.up, r.down,
         r.gflops_avg, r.gflops_peak, r.tree_seconds)
        for r in reports
    ]


@pytest.mark.parametrize("case", list(_CASES))
def test_table42(benchmark, case, bench_scale):
    kernel, workload = _CASES[case]
    rows = benchmark.pedantic(
        _model_rows, args=(kernel, workload, bench_scale["cap"]),
        rounds=1, iterations=1,
    )
    print_comparison(
        f"Table 4.2 / {case} (isogranular, {GRAIN/1e3:.0f}K particles/proc, "
        f"model cap {bench_scale['cap']:,})",
        TABLE41_HEADERS,
        TABLE42[case],
        rows,
    )
    totals = {row[0]: row[1] for row in rows}
    trees = {row[0]: row[8] for row in rows}
    # isogranular shape: interaction time stays within a small factor
    assert totals[1024] < 6 * totals[1]
    # the paper's tree-construction non-scalability
    assert trees[2048] > 10 * trees[1]
    if case == "stokes_nonuniform":
        ratios = {row[0]: row[2] for row in rows}
        assert ratios[2048] > ratios[1], "non-uniform load imbalance grows"
