"""End-to-end 2D KIFMM accuracy tests."""

import numpy as np
import pytest

from repro.twod import (
    FMM2DOptions,
    KIFMM2D,
    Laplace2DKernel,
    ModifiedLaplace2DKernel,
    Stokes2DKernel,
    direct_evaluate_2d,
)


def _rel(a, b):
    return np.linalg.norm(np.ravel(a) - np.ravel(b)) / np.linalg.norm(np.ravel(b))


def _cloud(rng, n, clustered=False):
    if clustered:
        corners = np.array([[-1.0, -1], [1, -1], [-1, 1], [1, 1]])
        per = -(-n // 4)
        return np.vstack(
            [c - np.sign(c) * 0.1 * np.abs(rng.standard_normal((per, 2)))
             for c in corners]
        )[:n]
    return rng.uniform(-1, 1, size=(n, 2))


@pytest.mark.parametrize(
    "kernel",
    [Laplace2DKernel(), ModifiedLaplace2DKernel(1.5), Stokes2DKernel(0.8)],
    ids=["laplace2d", "modified_laplace2d", "stokes2d"],
)
@pytest.mark.parametrize("clustered", [False, True], ids=["uniform", "clustered"])
def test_accuracy_vs_direct(rng, kernel, clustered):
    pts = _cloud(rng, 800, clustered)
    phi = rng.standard_normal((pts.shape[0], kernel.source_dof))
    fmm = KIFMM2D(kernel, FMM2DOptions(p=8, max_points=30)).setup(pts)
    u = fmm.apply(phi)
    exact = direct_evaluate_2d(kernel, pts, pts, phi)
    assert _rel(u, exact) < 1e-5


def test_p_refinement(rng):
    kernel = Laplace2DKernel()
    pts = _cloud(rng, 600)
    phi = rng.standard_normal((600, 1))
    exact = direct_evaluate_2d(kernel, pts, pts, phi)
    # beyond p~10 the inversion conditioning plateaus the error (the
    # method's expected behaviour), so sweep the convergent range
    errs = [
        _rel(
            KIFMM2D(kernel, FMM2DOptions(p=p, max_points=30)).setup(pts).apply(phi),
            exact,
        )
        for p in (4, 6, 8)
    ]
    assert errs[2] < errs[1] < errs[0]
    assert errs[2] < 1e-6


def test_disjoint_targets(rng):
    kernel = Laplace2DKernel()
    src = _cloud(rng, 500)
    trg = rng.uniform(-0.4, 0.4, size=(200, 2))
    phi = rng.standard_normal((500, 1))
    fmm = KIFMM2D(kernel, FMM2DOptions(p=8, max_points=25)).setup(src, trg)
    u = fmm.apply(phi)
    exact = direct_evaluate_2d(kernel, trg, src, phi)
    assert _rel(u, exact) < 1e-5


def test_linearity(rng):
    kernel = Stokes2DKernel()
    pts = _cloud(rng, 300)
    fmm = KIFMM2D(kernel, FMM2DOptions(p=6, max_points=25)).setup(pts)
    a = rng.standard_normal((300, 2))
    b = rng.standard_normal((300, 2))
    assert np.allclose(
        fmm.apply(a + 2 * b), fmm.apply(a) + 2 * fmm.apply(b), atol=1e-11
    )


def test_single_box(rng):
    kernel = Laplace2DKernel()
    pts = _cloud(rng, 20)
    phi = rng.standard_normal((20, 1))
    fmm = KIFMM2D(kernel, FMM2DOptions(p=4, max_points=40)).setup(pts)
    exact = direct_evaluate_2d(kernel, pts, pts, phi)
    assert _rel(fmm.apply(phi), exact) < 1e-12


def test_apply_before_setup_raises():
    with pytest.raises(RuntimeError):
        KIFMM2D(Laplace2DKernel()).apply(np.zeros((5, 1)))


def test_options_validation():
    with pytest.raises(ValueError):
        FMM2DOptions(p=1)
    with pytest.raises(ValueError):
        FMM2DOptions(inner=0.9)
