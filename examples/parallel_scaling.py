"""The SC'03 parallel algorithm, two ways.

1. For real: the three-stage compute/communicate/compute algorithm runs
   on in-process logical ranks (simulated MPI), exchanging actual
   messages; results are verified against the sequential evaluator.
2. At scale: the TCS-1 performance model extrapolates the same
   data structures to the paper's 3.2M-particle fixed-size experiment
   (Table 4.1).

Run:  python examples/parallel_scaling.py
"""

import time

import numpy as np

from repro import KIFMM, FMMOptions, LaplaceKernel
from repro.geometry import corner_clusters
from repro.kernels.direct import relative_error
from repro.parallel import run_parallel_fmm
from repro.perfmodel import TCS1, simulate_run
from repro.perfmodel.costs import compute_work
from repro.octree import build_lists, build_tree
from repro.util.tables import format_table


def main() -> None:
    rng = np.random.default_rng(3)
    kernel = LaplaceKernel()
    opts = FMMOptions(p=4, max_points=50)

    # ---- part 1: real message-passing runs ----
    n = 6000
    pts = corner_clusters(n, rng)
    phi = rng.standard_normal((n, 1))
    seq = KIFMM(kernel, opts).setup(pts).apply(phi)

    print(f"Real simulated-MPI runs (N={n}, corner-clustered):")
    rows = []
    for nranks in (1, 2, 4, 8):
        t0 = time.perf_counter()
        res = run_parallel_fmm(nranks, kernel, pts, phi, opts)
        dt = time.perf_counter() - t0
        err = relative_error(res.potential, seq)
        nbytes = sum(s.bytes_sent for s in res.comm_stats)
        msgs = sum(s.messages_sent for s in res.comm_stats)
        rows.append((nranks, dt, err, msgs, nbytes / 1e3))
    print(format_table(
        ("ranks", "wall s", "err vs sequential", "messages", "KB exchanged"),
        rows,
    ))

    # ---- part 2: TCS-1 model at paper scale ----
    n_model = 120_000
    print(f"\nTCS-1 model, fixed-size 3.2M particles "
          f"(tree measured at {n_model:,}):")
    pts_big = corner_clusters(n_model, rng)
    tree = build_tree(pts_big, max_points=60)
    lists = build_lists(tree)
    work = compute_work(tree, lists, kernel, 6)
    scale = 3_200_000 / pts_big.shape[0]
    rows = []
    for P in (1, 16, 64, 256, 1024):
        r = simulate_run(tree, lists, kernel, 6, P, TCS1, work=work,
                         grain_scale=scale, n_override=3_200_000)
        rows.append((P, r.total, r.up, r.down, r.comm, r.gflops_avg))
    print(format_table(
        ("P", "Total s", "Up s", "Down s", "Comm s", "aggregate GF/s"),
        rows,
    ))


if __name__ == "__main__":
    main()
