"""Stokes BIE tests against analytic solutions."""

import numpy as np
import pytest

from repro.bie import (
    SphereSurface,
    StokesSingleLayer,
    drag_force,
    resistance_matrix,
    solve_single_layer,
    stokes_drag_analytic,
)
from repro.core.fmm import FMMOptions


@pytest.fixture(scope="module")
def unit_sphere_op():
    s = SphereSurface(np.zeros(3), 1.0, 400)
    return StokesSingleLayer([s], mu=1.0, use_fmm=False)


class TestOperator:
    def test_constant_density_gives_constant_velocity(self, unit_sphere_op):
        """Single layer of uniform density over a sphere: u = 2R/(3mu) f."""
        op = unit_sphere_op
        f = np.tile([0.0, 0.0, 1.0], (op.n, 1))
        u = op.matvec(f.ravel()).reshape(op.n, 3)
        expected = 2.0 / 3.0  # 2R/(3 mu) with R = mu = 1
        assert np.allclose(u[:, 2], expected, rtol=0.02)
        assert np.allclose(u[:, :2], 0.0, atol=0.01)

    def test_matvec_linear(self, unit_sphere_op, rng):
        op = unit_sphere_op
        a = rng.standard_normal(3 * op.n)
        b = rng.standard_normal(3 * op.n)
        assert np.allclose(
            op.matvec(a + 2 * b), op.matvec(a) + 2 * op.matvec(b), atol=1e-12
        )

    def test_requires_surfaces(self):
        with pytest.raises(ValueError):
            StokesSingleLayer([], mu=1.0)


class TestStokesDrag:
    def test_translating_sphere_drag(self, unit_sphere_op):
        """Solve S phi = U and compare the force with 6 pi mu R U."""
        op = unit_sphere_op
        u_bc = np.tile([1.0, 0.0, 0.0], (op.n, 1))
        phi = solve_single_layer(op, u_bc, tol=1e-8)
        F = drag_force(op, phi, slice(0, op.n))
        exact = stokes_drag_analytic(1.0, 1.0, [1.0, 0.0, 0.0])
        assert F[0] == pytest.approx(exact[0], rel=0.02)
        assert np.abs(F[1:]).max() < 0.01 * exact[0]

    def test_density_matches_analytic(self, unit_sphere_op):
        """phi = 3 mu U / (2 R) uniformly for a translating sphere."""
        op = unit_sphere_op
        u_bc = np.tile([0.0, 1.0, 0.0], (op.n, 1))
        phi = solve_single_layer(op, u_bc, tol=1e-8)
        assert np.allclose(phi[:, 1].mean(), 1.5, rtol=0.02)

    def test_resistance_matrix_isotropic(self, unit_sphere_op):
        R = resistance_matrix(unit_sphere_op, 0, tol=1e-7)
        exact = 6 * np.pi
        assert np.allclose(np.diag(R), exact, rtol=0.02)
        off = R - np.diag(np.diag(R))
        assert np.abs(off).max() < 0.02 * exact

    def test_quadrature_convergence(self):
        """Drag error decreases as the surface is refined."""
        errs = []
        for n in (100, 400, 1600):
            s = SphereSurface(np.zeros(3), 1.0, n)
            op = StokesSingleLayer([s], mu=1.0, use_fmm=False)
            u_bc = np.tile([0.0, 0.0, 1.0], (n, 1))
            phi = solve_single_layer(op, u_bc, tol=1e-9)
            F = drag_force(op, phi, slice(0, n))
            errs.append(abs(F[2] - 6 * np.pi) / (6 * np.pi))
        assert errs[2] < errs[0]
        assert errs[2] < 0.01

    def test_viscosity_scaling(self):
        s = SphereSurface(np.zeros(3), 1.0, 200)
        op = StokesSingleLayer([s], mu=5.0, use_fmm=False)
        R = resistance_matrix(op, 0, tol=1e-7)
        assert R[0, 0] == pytest.approx(5.0 * 6 * np.pi, rel=0.03)


class TestFMMPath:
    def test_fmm_matvec_matches_direct(self, rng):
        s = SphereSurface(np.zeros(3), 1.0, 500)
        direct = StokesSingleLayer([s], mu=1.0, use_fmm=False)
        fmm = StokesSingleLayer(
            [s], mu=1.0, use_fmm=True, options=FMMOptions(p=6, max_points=60)
        )
        phi = rng.standard_normal(3 * 500)
        u_d = direct.matvec(phi)
        u_f = fmm.matvec(phi)
        assert np.linalg.norm(u_f - u_d) / np.linalg.norm(u_d) < 1e-4

    def test_two_bodies_interaction(self):
        """Drag on a sphere increases near another (held) sphere."""
        s1 = SphereSurface(np.array([0.0, 0, 0]), 1.0, 250)
        s2 = SphereSurface(np.array([3.0, 0, 0]), 1.0, 250)
        op = StokesSingleLayer([s1, s2], mu=1.0, use_fmm=False)
        n = op.n
        u_bc = np.zeros((n, 3))
        u_bc[: s1.n, 0] = 1.0  # body 1 translating, body 2 held
        phi = solve_single_layer(op, u_bc, tol=1e-7)
        F = drag_force(op, phi, op.body_slices()[0])
        # wall effect: force exceeds the isolated-sphere drag
        assert F[0] > 6 * np.pi * 1.01


class TestBlockMatvec:
    def test_block_forms_match_column_matvecs(self, unit_sphere_op, rng):
        op = unit_sphere_op
        n = op.n
        block3 = rng.standard_normal((n, 3, 4))
        flat = op.matvec(block3.reshape(3 * n, 4))
        assert flat.shape == (3 * n, 4)
        stacked = op.matvec(block3)
        assert np.array_equal(stacked, flat)
        wide = op.matvec(block3.reshape(n, 12))
        assert np.array_equal(wide.reshape(3 * n, 4), flat)
        for c in range(4):
            single = op.matvec(block3[:, :, c].ravel())
            err = np.linalg.norm(flat[:, c] - single) / np.linalg.norm(single)
            assert err < 1e-12

    def test_fmm_block_matvec_one_apply_per_block(self, rng):
        s = SphereSurface(np.zeros(3), 1.0, 400)
        op = StokesSingleLayer(
            [s], mu=1.0, use_fmm=True, options=FMMOptions(p=4, max_points=60)
        )
        before = op.matvec_count
        block = rng.standard_normal((3 * op.n, 5))
        out = op.matvec(block)
        assert out.shape == (3 * op.n, 5)
        assert op.matvec_count == before + 1  # one blocked evaluation
        for c in range(5):
            single = op.matvec(np.ascontiguousarray(block[:, c]))
            err = (np.linalg.norm(out[:, c] - single)
                   / np.linalg.norm(single))
            assert err < 1e-12

    def test_solve_block_matches_column_solves(self, unit_sphere_op):
        op = unit_sphere_op
        n = op.n
        U = np.zeros((n, 3, 2))
        U[:, 2, 0] = 1.0  # translation along z
        U[:, 0, 1] = 1.0  # translation along x
        res = op.solve_block(U, tol=1e-8)
        assert res.converged
        for c, direction in enumerate((2, 0)):
            single = solve_single_layer(
                op, U[:, :, c], tol=1e-8
            )
            diff = np.linalg.norm(res.x[:, c] - single.ravel())
            assert diff / np.linalg.norm(single) < 1e-6

    def test_solve_block_saves_matvecs(self, unit_sphere_op):
        op = unit_sphere_op
        n = op.n
        U = np.zeros((3 * n, 3))
        U[2::3, 0] = 1.0
        U[0::3, 1] = 1.0
        U[1::3, 2] = 1.0
        before = op.matvec_count
        res = op.solve_block(U, tol=1e-7)
        blocked = op.matvec_count - before
        assert res.converged
        before = op.matvec_count
        for c in range(3):
            op.solve(np.ascontiguousarray(U[:, c]), tol=1e-7)
        looped = op.matvec_count - before
        assert blocked < looped
