"""Plan-IR determinism: repeated setups compile to the identical program.

The static verifier is only trustworthy if the IR it certifies is a
stable function of the geometry — per-level buffer shapes, node
schedule and summed flop estimates must be *bitwise* identical across
repeated ``setup()`` calls, not merely equivalent.  A clustered point
cloud plus a ``max_depth`` cap pins the tree depth exactly, so each
depth 3–5 exercises a different level structure.
"""

import numpy as np
import pytest

from repro.analysis.planir import extract_plan_ir
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.stokes import StokesKernel
from repro.perfmodel.costs import compute_work

DEPTHS = (3, 4, 5)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    cluster = 0.5 + 1e-4 * rng.random((300, 3))
    return np.vstack([cluster, rng.random((300, 3))])


def _fingerprint(ir):
    """Everything the verifier reads, as a bitwise-comparable value."""
    buffers = tuple(
        (name, spec.shape, spec.dtype)
        for name, spec in sorted(ir.buffers.items())
    )
    nodes = tuple(
        (n.name, n.phase, n.kind, n.stage, n.reads, n.writes,
         n.releases, n.flops, n.dtype, n.deps)
        for n in ir.nodes
    )
    return buffers, nodes


def _setup_ir(kernel, points, depth, nrhs, m2l="fft"):
    opts = FMMOptions(p=3, max_points=20, max_depth=depth, m2l=m2l)
    fmm = KIFMM(kernel, opts).setup(points)
    assert fmm.tree.depth == depth
    ir = extract_plan_ir(
        fmm._plan, kernel, fmm.cache, m2l_mode=fmm.m2l_schedule, nrhs=nrhs,
    )
    return fmm, ir


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel()], ids=["laplace", "stokes"]
)
def test_ir_bitwise_stable_across_setups(kernel, points, depth):
    fmm1, ir1 = _setup_ir(kernel, points, depth, nrhs=1)
    fmm2, ir2 = _setup_ir(kernel, points, depth, nrhs=1)
    assert _fingerprint(ir1) == _fingerprint(ir2)
    assert ir1.flop_totals() == ir2.flop_totals()  # exact, not approx
    assert ir1.live_out == ir2.live_out


@pytest.mark.parametrize("depth", DEPTHS)
def test_resetup_of_one_operator_is_stable(points, depth):
    """setup() called twice on the same KIFMM recompiles identically."""
    kernel = LaplaceKernel()
    opts = FMMOptions(p=3, max_points=20, max_depth=depth, m2l="fft")
    fmm = KIFMM(kernel, opts)
    irs = []
    for _ in range(2):
        fmm.setup(points)
        irs.append(extract_plan_ir(
            fmm._plan, kernel, fmm.cache, m2l_mode=fmm.m2l_schedule, nrhs=1,
        ))
    assert _fingerprint(irs[0]) == _fingerprint(irs[1])


@pytest.mark.parametrize("depth", DEPTHS)
def test_per_level_buffer_shapes_match_plan(points, depth):
    kernel = LaplaceKernel()
    fmm, ir = _setup_ir(kernel, points, depth, nrhs=1)
    plan, n_surf = fmm._plan, fmm.cache.n_surf
    md, qd = kernel.source_dof, kernel.target_dof
    for ul in plan.up_levels:
        assert ir.buffers[f"ue@{ul.level}"].shape == (
            ul.boxes.size, n_surf * md,
        )
        assert ir.buffers[f"check@{ul.level}"].shape == (
            ul.boxes.size, n_surf * qd,
        )
    counts = np.bincount(plan.levels, minlength=plan.depth + 1)
    for dl in plan.down_levels:
        assert ir.buffers[f"dc@{dl.level}"].shape == (
            int(counts[dl.level]), n_surf * qd,
        )
    assert ir.buffers["phi"].dtype == "float64"
    for vl in plan.v_levels:
        assert ir.buffers[f"vhat@{vl.level}"].dtype == "complex128"


@pytest.mark.parametrize("nrhs", [1, 4])
@pytest.mark.parametrize("m2l", ["fft", "dense", "rsvd", "auto"])
def test_flop_totals_match_performance_model(points, m2l, nrhs):
    """The summed stage estimates ARE the model volumes — exactly."""
    for kernel in (LaplaceKernel(), StokesKernel()):
        fmm, ir = _setup_ir(kernel, points, 4, nrhs=nrhs, m2l=m2l)
        expected = compute_work(
            fmm.tree, fmm.lists, kernel, fmm.options.p,
            m2l=fmm.m2l_schedule, rsvd_rank=fmm.cache.m2l_rsvd_rank,
            nrhs=nrhs,
        ).totals()
        assert ir.flop_totals() == expected
