"""Rigid-body force balance: resistance matrices and drag.

For a rigid body translating with velocity ``U`` the single-layer density
``phi`` solving ``S phi = U`` integrates to the hydrodynamic drag,
``F = int phi dS``; for a sphere this is Stokes' law ``F = 6 pi mu R U``,
the analytic oracle of the application tests.
"""

from __future__ import annotations

import numpy as np

from repro.bie.stokes_bie import StokesSingleLayer, solve_single_layer


def stokes_drag_analytic(mu: float, radius: float, velocity: np.ndarray) -> np.ndarray:
    """Stokes' law ``F = 6 pi mu R U`` for a translating sphere."""
    if mu <= 0 or radius <= 0:
        raise ValueError("viscosity and radius must be positive")
    return 6.0 * np.pi * mu * radius * np.asarray(velocity, dtype=np.float64)


def drag_force(
    operator: StokesSingleLayer, density: np.ndarray, body: slice
) -> np.ndarray:
    """Integrate the single-layer density over one body: ``F = sum phi w``."""
    density = np.asarray(density, dtype=np.float64).reshape(operator.n, 3)
    return (density[body] * operator.weights[body, None]).sum(axis=0)


def resistance_matrix(
    operator: StokesSingleLayer,
    body_index: int,
    tol: float = 1e-6,
) -> np.ndarray:
    """Translational resistance matrix ``R`` of one body: ``F = R U``.

    Columns are obtained from three unit-velocity solves (other bodies
    held at rest); each solve runs the FMM-accelerated Krylov loop.  For
    an isolated sphere ``R = 6 pi mu R_sphere I``.
    """
    slices = operator.body_slices()
    sl = slices[body_index]
    R = np.zeros((3, 3))
    for d in range(3):
        u_bc = np.zeros((operator.n, 3))
        u_bc[sl, d] = 1.0
        phi = solve_single_layer(operator, u_bc, tol=tol)
        R[:, d] = drag_force(operator, phi, sl)
    return R
