"""Ablation: equivalent/check surface radii and inversion regularisation.

DESIGN.md's design choices 1 and 2: the surfaces sit at ``inner = 1.05``
and ``outer = 2.95`` box half-widths (the kifmm3d constants), and the
first-kind density solves use a truncated-SVD pseudo-inverse with
relative cutoff ``rcond``.  This bench sweeps both and measures the
resulting end-to-end accuracy — evidence for the defaults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.error import estimate_error
from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel
from repro.util.tables import format_table

N = 2500


def _error_for(inner, outer, rcond):
    rng = np.random.default_rng(51)
    pts = rng.uniform(-1, 1, size=(N, 3))
    phi = rng.random((N, 1))
    fmm = KIFMM(
        LaplaceKernel(),
        FMMOptions(p=6, max_points=50, inner=inner, outer=outer, rcond=rcond),
    ).setup(pts)
    return estimate_error(fmm, phi, nsamples=200, rng=rng)


def test_radius_sweep(benchmark):
    configs = [
        (1.05, 2.95),  # the kifmm3d defaults
        (1.05, 1.30),  # check surface far too tight
        (1.30, 2.95),  # looser equivalent surface
        (1.80, 2.20),  # both mid-range
    ]

    def sweep():
        return [(i, o, _error_for(i, o, 1e-12)) for i, o in configs]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ("inner", "outer", "rel. error"),
        rows,
        title=f"surface radius ablation (Laplace, p=6, N={N})",
    ))
    errs = {(i, o): e for i, o, e in rows}
    # the default well-separated pair beats a nearly-coincident pair
    assert errs[(1.05, 2.95)] < errs[(1.05, 1.30)]
    assert errs[(1.05, 2.95)] < 1e-5


def test_rcond_sweep(benchmark):
    rconds = (1e-4, 1e-8, 1e-12, 1e-15)

    def sweep():
        return [(rc, _error_for(1.05, 2.95, rc)) for rc in rconds]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ("rcond", "rel. error"),
        rows,
        title=f"pseudo-inverse regularisation ablation (Laplace, p=6, N={N})",
    ))
    errs = dict(rows)
    # over-truncation hurts; the default is in the flat optimum
    assert errs[1e-12] < errs[1e-4]
    assert errs[1e-12] < 1e-5
