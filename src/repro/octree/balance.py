"""Optional 2:1 tree balancing.

The paper's adaptive algorithm needs no balance condition — the W and X
lists handle arbitrary level jumps between adjacent leaves — but a
2:1-balanced tree (adjacent leaves differ by at most one level) bounds
the U/W/X list sizes and is a standard option in production FMM codes.
``benchmarks/bench_balance_ablation.py`` measures the trade-off: more
boxes vs smaller adaptive lists.

Algorithm: collect the split set of the unbalanced tree, close it under
the 2:1 rule (if a box at level ``l`` is split, every same-level
neighbour's parent must be split too), and rebuild the tree with that
explicit split set.
"""

from __future__ import annotations

import numpy as np

from repro.octree.box import Box
from repro.octree.morton import MAX_DEPTH, anchor_to_key, encode_points
from repro.octree.tree import Octree

_U = np.uint64


def balanced_split_set(tree: Octree) -> set[tuple[int, tuple[int, int, int]]]:
    """Split decisions of ``tree`` closed under the 2:1 rule."""
    split = {
        (b.level, b.anchor) for b in tree.boxes if not b.is_leaf
    }
    # process deepest first; the closure only ever adds coarser entries
    queue = sorted(split, key=lambda e: -e[0])
    seen = set(split)
    while queue:
        level, (ix, iy, iz) = queue.pop()
        if level == 0:
            continue
        n = 1 << level
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    jx, jy, jz = ix + dx, iy + dy, iz + dz
                    if not (0 <= jx < n and 0 <= jy < n and 0 <= jz < n):
                        continue
                    parent = (level - 1, (jx // 2, jy // 2, jz // 2))
                    if parent not in seen:
                        seen.add(parent)
                        queue.append(parent)
    return seen


def balance_tree(tree: Octree) -> Octree:
    """Rebuild ``tree`` as a 2:1-balanced tree over the same points.

    The result satisfies: adjacent leaves differ by at most one level;
    every point lands in the same or a finer leaf than before.  Unlike
    the adaptive builder, split boxes keep their complete sibling sets
    (empty leaves included) — the finer leaves are exactly what the 2:1
    condition promises to the neighbours.
    """
    split = balanced_split_set(tree)
    sources, targets = tree.sources, tree.targets
    shared = tree.shared_points
    corner, side = tree.root_corner, tree.root_side

    src_keys = encode_points(sources, corner, side)
    src_perm = np.argsort(src_keys, kind="stable")
    src_sorted = src_keys[src_perm]
    if shared:
        trg_perm, trg_sorted = src_perm, src_sorted
    else:
        trg_keys = encode_points(targets, corner, side)
        trg_perm = np.argsort(trg_keys, kind="stable")
        trg_sorted = trg_keys[trg_perm]

    out = Octree(
        sources=sources,
        targets=targets,
        root_corner=corner,
        root_side=side,
        max_points=tree.max_points,
        shared_points=shared,
        src_perm=src_perm,
        trg_perm=trg_perm,
    )
    out.boxes.append(
        Box(
            index=0, level=0, anchor=(0, 0, 0), parent=-1,
            src_start=0, src_stop=sources.shape[0],
            trg_start=0, trg_stop=targets.shape[0],
        )
    )
    out.index[(0, (0, 0, 0))] = 0
    out.levels.append([0])

    frontier = [0]
    level = 0
    while frontier:
        next_frontier: list[int] = []
        shift = _U(3 * (MAX_DEPTH - level - 1))
        for bi in frontier:
            box = out.boxes[bi]
            if (box.level, box.anchor) not in split:
                continue
            ix, iy, iz = box.anchor
            base = _U(anchor_to_key(ix, iy, iz)) << _U(3)
            bounds = (base + np.arange(9, dtype=np.uint64)) << shift
            s_cuts = box.src_start + np.searchsorted(
                src_sorted[box.src_start : box.src_stop], bounds, side="left"
            )
            t_cuts = box.trg_start + np.searchsorted(
                trg_sorted[box.trg_start : box.trg_stop], bounds, side="left"
            )
            kids = []
            for c in range(8):
                child_anchor = (
                    2 * ix + (c & 1),
                    2 * iy + ((c >> 1) & 1),
                    2 * iz + ((c >> 2) & 1),
                )
                # Balanced trees keep complete sibling sets: a forced
                # split must produce the finer leaves its neighbours'
                # 2:1 condition relies on, even when they hold no points
                # (empty leaves are skipped by the evaluator anyway).
                child = Box(
                    index=len(out.boxes),
                    level=level + 1,
                    anchor=child_anchor,
                    parent=bi,
                    src_start=int(s_cuts[c]),
                    src_stop=int(s_cuts[c + 1]),
                    trg_start=int(t_cuts[c]),
                    trg_stop=int(t_cuts[c + 1]),
                )
                out.boxes.append(child)
                out.index[(level + 1, child_anchor)] = child.index
                kids.append(child.index)
            box.children = tuple(kids)
            next_frontier.extend(kids)
        if next_frontier:
            out.levels.append(next_frontier)
        frontier = next_frontier
        level += 1
    return out


def max_adjacent_level_jump(tree: Octree) -> int:
    """Largest level difference between adjacent leaves (balance metric)."""
    from repro.octree.box import boxes_adjacent

    leaves = [tree.boxes[i] for i in tree.leaves()]
    worst = 0
    for a in leaves:
        for b in leaves:
            if a.index < b.index and boxes_adjacent(a, b):
                worst = max(worst, abs(a.level - b.level))
    return worst
