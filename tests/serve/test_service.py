"""The micro-batching evaluation service: parity, policy, reporting.

The serve-layer claims: concurrent asyncio requests come back with
exactly the answers direct applies produce (batching changes the
schedule, not the mathematics), the max-batch/max-delay policy bounds
batch sizes, failures surface on the requester (never silently
dropped), and the load generator completes every request with sane
percentile ordering.
"""

import asyncio

import numpy as np
import pytest

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel, StokesKernel
from repro.kernels.direct import relative_error
from repro.serve import (
    EvaluationService,
    OperatorRegistry,
    percentile_summary,
    run_load,
)

from tests.conftest import uniform_cloud


def _registry(rng, kernel, n=400, p=4, mp=30):
    pts = uniform_cloud(rng, n)
    registry = OperatorRegistry()
    key = registry.register(kernel, pts, FMMOptions(p=p, max_points=mp))
    return registry, key


@pytest.mark.parametrize(
    "kernel", [LaplaceKernel(), StokesKernel(mu=0.7)],
    ids=["laplace", "stokes"],
)
def test_concurrent_requests_match_direct_applies(rng, kernel):
    registry, key = _registry(rng, kernel)
    op = registry.get(key)
    n, dof = 400, kernel.source_dof
    densities = [rng.standard_normal((n, dof)) for _ in range(10)]
    service = EvaluationService(registry, max_batch=4, max_delay=0.01)

    async def main():
        await service.start()
        results = await asyncio.gather(
            *(service.evaluate(key, d) for d in densities)
        )
        await service.stop()
        return results

    results = asyncio.run(main())
    for density, out in zip(densities, results):
        direct = op.apply(density)
        assert out.shape == direct.shape
        assert relative_error(out, direct) < 1e-12
    assert service.stats.completed == len(densities)
    assert service.stats.dropped == 0
    # a concurrent burst must actually batch
    assert service.stats.batches < len(densities)
    assert service.stats.mean_batch > 1.0


def test_max_batch_bounds_block_width(rng):
    registry, key = _registry(rng, LaplaceKernel())
    service = EvaluationService(registry, max_batch=3, max_delay=0.05)
    densities = [rng.standard_normal((400, 1)) for _ in range(8)]

    async def main():
        await service.start()
        out = await asyncio.gather(
            *(service.evaluate(key, d) for d in densities)
        )
        await service.stop()
        return out

    asyncio.run(main())
    stats = service.stats
    assert stats.batched_requests == 8
    # no batch may exceed max_batch: 8 requests need at least ceil(8/3)
    assert stats.batches >= 3


def test_max_batch_one_disables_batching(rng):
    registry, key = _registry(rng, LaplaceKernel())
    service = EvaluationService(registry, max_batch=1, max_delay=0.0)
    densities = [rng.standard_normal((400, 1)) for _ in range(5)]

    async def main():
        await service.start()
        out = await asyncio.gather(
            *(service.evaluate(key, d) for d in densities)
        )
        await service.stop()
        return out

    asyncio.run(main())
    assert service.stats.batches == 5
    assert service.stats.mean_batch == 1.0


def test_zero_delay_batcher_yields_between_batches(rng):
    """max_delay=0.0 must not monopolise the event loop.

    With an instant-dispatch policy and a non-empty queue, neither the
    queue get nor the collect loop ever suspends, so the batch worker
    must yield explicitly after each apply — otherwise every waiter's
    wakeup (and any new producer) is deferred until the whole queue
    drains.  The spy records the interleaving: at least one requester
    must observe its result before the final batch is applied.
    """
    registry, key = _registry(rng, LaplaceKernel(), n=300)
    service = EvaluationService(registry, max_batch=1, max_delay=0.0)
    events = []
    orig = service._apply_batch

    def spy(key_, batch):
        events.append("batch")
        return orig(key_, batch)

    service._apply_batch = spy
    densities = [rng.standard_normal((300, 1)) for _ in range(6)]

    async def request(d):
        await service.evaluate(key, d)
        events.append("resolved")

    async def main():
        await service.start()
        await asyncio.gather(*(request(d) for d in densities))
        await service.stop()

    asyncio.run(main())
    assert events.count("batch") == 6 and events.count("resolved") == 6
    first_resolved = events.index("resolved")
    last_batch = len(events) - 1 - events[::-1].index("batch")
    assert first_resolved < last_batch, events


def test_bad_request_surfaces_on_the_caller(rng):
    registry, key = _registry(rng, LaplaceKernel())
    service = EvaluationService(registry, max_batch=4, max_delay=0.0)

    async def main():
        await service.start()
        try:
            with pytest.raises(ValueError):
                await service.evaluate(key, rng.standard_normal(13))
        finally:
            await service.stop()

    asyncio.run(main())
    assert service.stats.dropped == 1


def test_unknown_key_raises():
    registry = OperatorRegistry()
    with pytest.raises(KeyError, match="no operator registered"):
        registry.get(("laplace", 3, 4))


def test_registry_keys_by_kernel_level_p(rng):
    registry = OperatorRegistry()
    pts = uniform_cloud(rng, 300)
    key = registry.register(
        LaplaceKernel(), pts, FMMOptions(p=4, max_points=30)
    )
    op = registry.get(key)
    assert key == ("laplace", op.tree.depth, 4)
    key2 = registry.register(
        StokesKernel(), pts, FMMOptions(p=4, max_points=30)
    )
    assert key2[0] == "stokes" and key2 != key
    assert registry.keys() == sorted([key, key2])


def test_evaluate_before_start_raises(rng):
    registry, key = _registry(rng, LaplaceKernel())
    service = EvaluationService(registry)

    async def main():
        await service.evaluate(key, np.zeros((400, 1)))

    with pytest.raises(RuntimeError, match="before start"):
        asyncio.run(main())


def test_load_generator_completes_everything(rng):
    registry, key = _registry(rng, LaplaceKernel(), n=300)
    service = EvaluationService(registry, max_batch=8, max_delay=0.002)
    report = run_load(service, key, nrequests=24, rate=2000.0, seed=3)
    assert report.completed == 24
    assert report.dropped == 0
    assert report.throughput > 0.0
    assert 0.0 <= report.p50 <= report.p95 <= report.p99
    assert report.batches >= 1
    d = report.as_dict()
    assert d["requests"] == 24 and d["dropped"] == 0


def test_percentile_summary_empty_and_ordering():
    assert percentile_summary([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    pct = percentile_summary(list(range(100)))
    assert pct["p50"] <= pct["p95"] <= pct["p99"]


def test_batched_answers_match_for_stokes_load(rng):
    """End-to-end: every load-generated Stokes request answered right."""
    kernel = StokesKernel(mu=0.7)
    registry, key = _registry(rng, kernel, n=300, mp=35)
    op = registry.get(key)
    service = EvaluationService(registry, max_batch=4, max_delay=0.005)
    densities = [rng.standard_normal((300, 3)) for _ in range(6)]

    async def main():
        await service.start()
        out = await asyncio.gather(
            *(service.evaluate(key, d) for d in densities)
        )
        await service.stop()
        return out

    results = asyncio.run(main())
    for density, out in zip(densities, results):
        assert relative_error(out, op.apply(density)) < 1e-12
