"""Ellipsoid, composite and propeller surface tests."""

import numpy as np
import pytest

from repro.bie.surfaces import (
    CompositeSurface,
    EllipsoidSurface,
    SphereSurface,
    propeller_surface,
    rotation_matrix,
)


class TestRotationMatrix:
    def test_orthogonal(self):
        R = rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
        assert np.allclose(R @ R.T, np.eye(3))
        assert np.linalg.det(R) == pytest.approx(1.0)

    def test_quarter_turn_z(self):
        R = rotation_matrix(np.array([0.0, 0.0, 1.0]), np.pi / 2)
        assert np.allclose(R @ np.array([1.0, 0, 0]), [0, 1, 0], atol=1e-12)

    def test_zero_axis_is_identity(self):
        assert np.allclose(rotation_matrix(np.zeros(3), 1.0), np.eye(3))


class TestEllipsoidSurface:
    def test_points_on_ellipsoid(self):
        axes = np.array([2.0, 1.0, 0.5])
        e = EllipsoidSurface(np.zeros(3), axes, 500)
        vals = ((e.points / axes) ** 2).sum(axis=1)
        assert np.allclose(vals, 1.0, atol=1e-10)

    def test_sphere_limit(self):
        """Equal semi-axes reduce to a sphere with uniform weights."""
        e = EllipsoidSurface(np.zeros(3), np.full(3, 1.5), 300)
        area = 4 * np.pi * 1.5**2
        assert e.weights.sum() == pytest.approx(area, rel=1e-10)
        assert np.allclose(e.weights, e.weights[0])

    def test_surface_area_quadrature(self):
        """Weights sum to the ellipsoid area (vs Thomsen's approximation)."""
        a, b, c = 1.0, 0.8, 0.6
        e = EllipsoidSurface(np.zeros(3), np.array([a, b, c]), 8000)
        p = 1.6075
        thomsen = 4 * np.pi * (
            ((a * b) ** p + (a * c) ** p + (b * c) ** p) / 3
        ) ** (1 / p)
        assert e.weights.sum() == pytest.approx(thomsen, rel=0.01)

    def test_normals_orthogonal_to_surface(self):
        """n ~ gradient of the level set (x/a^2, y/b^2, z/c^2)."""
        axes = np.array([2.0, 1.0, 0.5])
        e = EllipsoidSurface(np.zeros(3), axes, 200)
        grad = e.points / axes**2
        grad /= np.linalg.norm(grad, axis=1, keepdims=True)
        assert np.allclose(e.normals, grad, atol=1e-10)

    def test_rotate_preserves_shape(self):
        e = EllipsoidSurface(np.ones(3), np.array([1.0, 0.5, 0.25]), 100)
        w_before = e.weights.copy()
        d_before = np.linalg.norm(e.points - e.center, axis=1)
        R = rotation_matrix(np.array([1.0, 1.0, 0.0]), 1.1)
        e.rotate(R)
        assert np.allclose(e.weights, w_before)
        assert np.allclose(
            np.linalg.norm(e.points - e.center, axis=1), d_before
        )
        assert np.allclose(np.linalg.norm(e.normals, axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EllipsoidSurface(np.zeros(3), np.array([1.0, -1.0, 1.0]), 100)
        with pytest.raises(ValueError):
            EllipsoidSurface(np.zeros(3), np.ones(3), 2)


class TestCompositeSurface:
    def test_concatenation(self):
        s1 = SphereSurface(np.zeros(3), 1.0, 30)
        s2 = SphereSurface(np.array([3.0, 0, 0]), 0.5, 20)
        c = CompositeSurface([s1, s2], center=np.zeros(3))
        assert c.n == 50
        assert c.points.shape == (50, 3)
        assert c.weights.shape == (50,)
        assert c.normals.shape == (50, 3)

    def test_translate_moves_all(self):
        s1 = SphereSurface(np.zeros(3), 1.0, 10)
        s2 = SphereSurface(np.array([2.0, 0, 0]), 1.0, 10)
        c = CompositeSurface([s1, s2], center=np.array([1.0, 0, 0]))
        c.translate(np.array([0.0, 0.0, 5.0]))
        assert np.allclose(c.center, [1, 0, 5])
        assert np.allclose(s2.center, [2, 0, 5])

    def test_rotate_about_assembly_center(self):
        s = SphereSurface(np.array([1.0, 0, 0]), 0.2, 10)
        c = CompositeSurface([s], center=np.zeros(3))
        c.rotate(rotation_matrix(np.array([0.0, 0, 1.0]), np.pi / 2))
        assert np.allclose(s.center, [0, 1, 0], atol=1e-12)

    def test_requires_members(self):
        with pytest.raises(ValueError):
            CompositeSurface([], center=np.zeros(3))


class TestPropeller:
    def test_structure(self):
        prop = propeller_surface(np.zeros(3), nblades=3)
        assert len(prop.members) == 4  # hub + 3 blades
        assert prop.n == prop.points.shape[0]

    def test_blades_symmetric(self):
        prop = propeller_surface(np.zeros(3), nblades=4)
        blade_centers = [m.center for m in prop.members[1:]]
        radii = [np.linalg.norm(c) for c in blade_centers]
        assert np.allclose(radii, radii[0])
        # blades lie in the x-y plane
        assert np.allclose([c[2] for c in blade_centers], 0.0)

    def test_rotation_sweeps_blades(self):
        prop = propeller_surface(np.zeros(3), nblades=2)
        tip_before = prop.members[1].center.copy()
        prop.rotate(rotation_matrix(np.array([0.0, 0, 1.0]), np.pi / 2))
        tip_after = prop.members[1].center
        assert np.linalg.norm(tip_after - tip_before) > 0.5
        assert np.linalg.norm(tip_after) == pytest.approx(
            np.linalg.norm(tip_before)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            propeller_surface(np.zeros(3), nblades=0)
