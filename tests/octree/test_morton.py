"""Morton key encoding tests, including hypothesis round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree.morton import (
    MAX_DEPTH,
    anchor_to_key,
    decode_key,
    encode_points,
    key_prefix,
    key_to_anchor,
)

COORD = st.integers(min_value=0, max_value=(1 << MAX_DEPTH) - 1)


class TestInterleave:
    @given(COORD, COORD, COORD)
    @settings(max_examples=200)
    def test_roundtrip(self, ix, iy, iz):
        key = anchor_to_key(ix, iy, iz)
        jx, jy, jz = key_to_anchor(key)
        assert (int(jx), int(jy), int(jz)) == (ix, iy, iz)

    def test_origin_is_zero(self):
        assert int(anchor_to_key(0, 0, 0)) == 0

    def test_unit_steps(self):
        # x is the lowest interleaved bit, then y, then z
        assert int(anchor_to_key(1, 0, 0)) == 1
        assert int(anchor_to_key(0, 1, 0)) == 2
        assert int(anchor_to_key(0, 0, 1)) == 4

    def test_vectorised(self, rng):
        ix = rng.integers(0, 1 << MAX_DEPTH, size=100)
        iy = rng.integers(0, 1 << MAX_DEPTH, size=100)
        iz = rng.integers(0, 1 << MAX_DEPTH, size=100)
        keys = anchor_to_key(ix, iy, iz)
        jx, jy, jz = key_to_anchor(keys)
        assert np.array_equal(jx, ix.astype(np.uint64))
        assert np.array_equal(jy, iy.astype(np.uint64))
        assert np.array_equal(jz, iz.astype(np.uint64))

    @given(COORD, COORD, COORD)
    @settings(max_examples=100)
    def test_injective_max_key(self, ix, iy, iz):
        key = int(anchor_to_key(ix, iy, iz))
        assert 0 <= key < (1 << (3 * MAX_DEPTH))


class TestEncodePoints:
    def test_cell_indices(self):
        corner = np.zeros(3)
        pts = np.array([[0.0, 0.0, 0.0], [0.999999, 0.999999, 0.999999]])
        keys = encode_points(pts, corner, 1.0)
        assert int(keys[0]) == 0
        assert int(keys[1]) > int(keys[0])
        # the second point lands in the last level-1 octant
        assert int(keys[1]) >> (3 * (MAX_DEPTH - 1)) == 7

    def test_far_face_clamped(self):
        keys = encode_points(np.array([[1.0, 1.0, 1.0]]), np.zeros(3), 1.0)
        assert int(keys[0]) == (1 << (3 * MAX_DEPTH)) - 1

    def test_outside_raises(self):
        with pytest.raises(ValueError):
            encode_points(np.array([[2.0, 0.0, 0.0]]), np.zeros(3), 1.0)
        with pytest.raises(ValueError):
            encode_points(np.array([[-0.5, 0.0, 0.0]]), np.zeros(3), 1.0)

    def test_bad_side_raises(self):
        with pytest.raises(ValueError):
            encode_points(np.zeros((1, 3)), np.zeros(3), 0.0)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            encode_points(np.zeros((3,)), np.zeros(3), 1.0)

    def test_morton_order_locality(self, rng):
        """Points sorted by key: each octant forms a contiguous run."""
        pts = rng.random((500, 3))
        keys = encode_points(pts, np.zeros(3), 1.0)
        order = np.argsort(keys)
        octant = (
            (pts[order, 0] >= 0.5).astype(int)
            + 2 * (pts[order, 1] >= 0.5).astype(int)
            + 4 * (pts[order, 2] >= 0.5).astype(int)
        )
        # octant sequence must be non-decreasing along the curve
        assert np.all(np.diff(octant) >= 0)


class TestPrefix:
    def test_key_prefix_levels(self):
        key = anchor_to_key(5, 3, 7)  # a level-3 anchor
        full = np.uint64(int(key) << (3 * (MAX_DEPTH - 3)))
        assert int(key_prefix(full, 3)) == int(key)
        assert int(key_prefix(full, 0)) == 0

    def test_decode_key(self):
        key = int(anchor_to_key(5, 3, 7)) << (3 * (MAX_DEPTH - 3))
        assert decode_key(key, 3) == (5, 3, 7)
