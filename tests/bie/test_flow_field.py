"""Off-surface velocity evaluation tests."""

import numpy as np
import pytest

from repro.bie import (
    SphereSurface,
    StokesSingleLayer,
    evaluate_velocity,
    solve_single_layer,
)
from repro.core.fmm import FMMOptions


@pytest.fixture(scope="module")
def solved_translating_sphere():
    s = SphereSurface(np.zeros(3), 1.0, 400)
    op = StokesSingleLayer([s], mu=1.0, use_fmm=False)
    u_bc = np.tile([0.0, 0.0, 1.0], (op.n, 1))
    phi = solve_single_layer(op, u_bc, tol=1e-8)
    return op, phi


def test_velocity_decays_far_away(solved_translating_sphere):
    op, phi = solved_translating_sphere
    near = evaluate_velocity(op, phi, np.array([[0.0, 0.0, 1.5]]))
    far = evaluate_velocity(op, phi, np.array([[0.0, 0.0, 30.0]]))
    assert np.linalg.norm(far) < 0.1 * np.linalg.norm(near)


def test_matches_analytic_stokes_flow(solved_translating_sphere):
    """Velocity around a translating sphere: the classical solution.

    On the axis of motion at distance r: u_z = U (3R/(2r) - R^3/(2r^3)).
    """
    op, phi = solved_translating_sphere
    r = 2.5
    u = evaluate_velocity(op, phi, np.array([[0.0, 0.0, r]]))
    expected = 3.0 / (2 * r) - 1.0 / (2 * r**3)
    assert u[0, 2] == pytest.approx(expected, rel=0.01)
    assert abs(u[0, 0]) < 1e-3 and abs(u[0, 1]) < 1e-3


def test_fmm_path_matches_direct(solved_translating_sphere, rng):
    op, phi = solved_translating_sphere
    pts = rng.uniform(1.5, 3.0, size=(50, 3))
    direct = evaluate_velocity(op, phi, pts, use_fmm=False)
    via_fmm = evaluate_velocity(
        op, phi, pts, use_fmm=True, options=FMMOptions(p=6, max_points=60)
    )
    assert np.linalg.norm(via_fmm - direct) / np.linalg.norm(direct) < 1e-4


def test_no_slip_on_surface(solved_translating_sphere):
    """Approaching the surface, the flow tends to the body velocity."""
    op, phi = solved_translating_sphere
    probe = np.array([[1.05, 0.0, 0.0]])  # just outside the equator
    u = evaluate_velocity(op, phi, probe)
    assert u[0, 2] == pytest.approx(1.0, abs=0.15)
