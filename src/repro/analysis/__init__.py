"""Static, trace-based and runtime correctness analysis.

Three pillars (see ``docs/architecture.md`` § "Analysis & correctness
tooling" and § "Race detection & sanitizers"):

- :mod:`repro.analysis.trace` / :mod:`repro.analysis.commcheck` — a
  per-rank communication event trace recorded by the simulated MPI
  runtime (Lamport + vector clocks on every send/recv/collective) and an
  offline analyzer that builds the happens-before relation and proves an
  execution free of leaked messages, wait-for deadlock cycles,
  collective divergence, channel-order nondeterminism and un-waited
  receive requests.
- :mod:`repro.analysis.racecheck` / :mod:`repro.analysis.sanitize` — a
  happens-before data-race detector over instrumented shared-array
  accesses of the overlapped parallel path (``repro racecheck``), and
  the ``REPRO_SANITIZE=1`` runtime sanitizers (BufferPool lifecycle
  with NaN poisoning, phase-boundary finite checks, GEMM aliasing
  guards).
- :mod:`repro.analysis.lint` — an ``ast``-based lint of repo invariants
  (flop accounting, thread confinement, dtype width, buffer-pool
  escapes, mutable defaults, request completion) run as
  ``python -m repro.analysis.lint src/``.
"""

from repro.analysis.commcheck import CommReport, Finding, check_trace, compare_traces
from repro.analysis.racecheck import AccessRecord, Race, RaceDetector, RaceReport
from repro.analysis.sanitize import SanitizerError
from repro.analysis.trace import CommTrace, TraceEvent, payload_digest

__all__ = [
    "AccessRecord",
    "CommReport",
    "CommTrace",
    "Finding",
    "Race",
    "RaceDetector",
    "RaceReport",
    "SanitizerError",
    "TraceEvent",
    "check_trace",
    "compare_traces",
    "payload_digest",
]
