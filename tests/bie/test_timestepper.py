"""Sedimentation time-stepper tests (the Figure 4.1 scenario)."""

import numpy as np
import pytest

from repro.bie import RigidBody, SedimentationSimulation, SphereSurface


def _free_sphere(z=2.0, n=150):
    return RigidBody(SphereSurface(np.array([0.0, 0.0, z]), 0.5, n))


def _stirrer(n=150, omega=-2.0):
    return RigidBody(
        SphereSurface(np.zeros(3), 0.8, n),
        angular_velocity=np.array([0.0, 0.0, omega]),
        prescribed=True,
    )


class TestForceBalance:
    def test_isolated_sphere_settles_at_stokes_velocity(self):
        """Far from everything, U = F / (6 pi mu R)."""
        body = RigidBody(SphereSurface(np.zeros(3), 0.5, 400))
        sim = SedimentationSimulation(
            [body], gravity_force=np.array([0.0, 0.0, -3.0]),
            use_fmm=False, tol=1e-7,
        )
        frame = sim.step(0.01)
        expected = -3.0 / (6 * np.pi * 1.0 * 0.5)
        assert frame.free_velocity[2] == pytest.approx(expected, rel=0.02)
        assert abs(frame.free_velocity[0]) < 1e-6

    def test_falls_in_gravity_direction(self):
        sim = SedimentationSimulation(
            [_free_sphere(), _stirrer()],
            gravity_force=np.array([0.0, 0.0, -5.0]),
            use_fmm=False,
        )
        frame = sim.step(0.05)
        assert frame.free_velocity[2] < 0

    def test_nearby_body_retards_settling(self):
        """Hydrodynamic interaction slows the sedimenting sphere."""
        free_iso = RigidBody(SphereSurface(np.array([0.0, 0, 2.0]), 0.5, 150))
        sim_iso = SedimentationSimulation(
            [free_iso], gravity_force=np.array([0, 0, -5.0]), use_fmm=False
        )
        u_iso = sim_iso.step(0.01).free_velocity[2]

        sim_near = SedimentationSimulation(
            [_free_sphere(z=1.5), _stirrer(omega=0.0)],
            gravity_force=np.array([0, 0, -5.0]),
            use_fmm=False,
        )
        u_near = sim_near.step(0.01).free_velocity[2]
        assert abs(u_near) < abs(u_iso)


class TestTrajectory:
    def test_positions_advance(self):
        sim = SedimentationSimulation(
            [_free_sphere(), _stirrer()],
            gravity_force=np.array([0.0, 0.0, -5.0]),
            use_fmm=False,
        )
        frames = sim.run(3, dt=0.05)
        assert len(frames) == 3
        z = [f.positions[0][2] for f in frames]
        assert z[0] > z[1] > z[2]  # monotone descent
        # stirrer never moves (prescribed zero translation)
        assert np.allclose(frames[-1].positions[1], 0.0)

    def test_time_advances(self):
        sim = SedimentationSimulation(
            [_free_sphere()], gravity_force=np.array([0, 0, -1.0]),
            use_fmm=False,
        )
        sim.run(2, dt=0.1)
        assert sim.time == pytest.approx(0.2)

    def test_matvecs_accumulate(self):
        """Each step runs tens of interaction evaluations (Section 3)."""
        sim = SedimentationSimulation(
            [_free_sphere()], gravity_force=np.array([0, 0, -1.0]),
            use_fmm=False,
        )
        frames = sim.run(2, dt=0.1)
        assert frames[0].matvecs >= 10
        assert frames[1].matvecs > frames[0].matvecs


class TestValidation:
    def test_requires_exactly_one_free_body(self):
        with pytest.raises(ValueError):
            SedimentationSimulation(
                [_stirrer()], gravity_force=np.zeros(3), use_fmm=False
            )
        with pytest.raises(ValueError):
            SedimentationSimulation(
                [_free_sphere(), _free_sphere(z=4.0)],
                gravity_force=np.zeros(3),
                use_fmm=False,
            )

    def test_rejects_bad_dt(self):
        sim = SedimentationSimulation(
            [_free_sphere()], gravity_force=np.array([0, 0, -1.0]),
            use_fmm=False,
        )
        with pytest.raises(ValueError):
            sim.step(0.0)
