"""Seeded stage-metadata violation: StageMeta missing the dtype keyword."""

from dataclasses import dataclass

from repro.core.plan import StageMeta, plan_stage


@plan_stage
@dataclass
class BadStage:
    boxes: object

    stage_meta = StageMeta(reads=("phi",), writes=("check",))  # seeded violation: stage-metadata
