"""Contributor / owner assignment (Section 3.2).

"Before the interaction calculation, we first partition the global tree
array, so that for each box B the owner processor coordinates the
communication related to B.  If only one processor contributes to B, then
it is the owner of B.  If multiple processors contribute to B, then it
can be owned by any processor, and the owner is chosen to balance the
communication load. ... every processor P uses the same sequential
algorithm to assign unmarked boxes to processors."

We reproduce the three-step structure with one Allgather of the local
contribution masks (the paper derives sole-contributorship from
local==global counts and an Allreduce of "taken" marks; exchanging the
masks directly is equivalent and also provides the contributor sets the
gather step needs).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.simmpi import SimComm


def gather_contributors(
    comm: SimComm, local_src: np.ndarray, local_trg: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Allgather the per-box contribution masks.

    Returns ``(contrib_src, contrib_trg)``, each ``(nranks, nboxes)``
    bool: rank ``r`` contributes sources/targets to box ``b``.
    """
    stacked = comm.allgather(
        np.stack([local_src, local_trg]).astype(np.uint8)
    )
    arr = np.stack(stacked).astype(bool)  # (nranks, 2, nboxes)
    return arr[:, 0, :], arr[:, 1, :]


def static_contributors(
    tree, parts: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Offline mirror of :func:`gather_contributors` — no SPMD run.

    Given the *global* tree (built over all points with the agreed root
    cube) and the per-rank original-index partition from
    :func:`repro.parallel.partition.partition_points`, computes the same
    ``(contrib_src, contrib_trg)`` matrices every rank would assemble
    collectively: rank ``r`` contributes to box ``b`` iff one of its
    points lies in ``b``.  Box membership is identical because the
    parallel per-rank trees share the global topology and root cube (see
    ``repro/parallel/ptree.py``), so this is exact for arbitrary rank
    counts — including counts far beyond what the simulated runtime can
    execute, which is what makes the static communication verifier
    (:mod:`repro.analysis.commir`) possible at P=4096.
    """
    nranks = len(parts)
    rank_of = np.empty(tree.sources.shape[0], dtype=np.int64)
    for r, idx in enumerate(parts):
        rank_of[idx] = r
    by_src_pos = rank_of[tree.src_perm]
    by_trg_pos = rank_of[tree.trg_perm]
    contrib_src = np.zeros((nranks, tree.nboxes), dtype=bool)
    contrib_trg = np.zeros((nranks, tree.nboxes), dtype=bool)
    for b in tree.boxes:
        contrib_src[np.unique(by_src_pos[b.src_start:b.src_stop]),
                    b.index] = True
        contrib_trg[np.unique(by_trg_pos[b.trg_start:b.trg_stop]),
                    b.index] = True
    return contrib_src, contrib_trg


def assign_owners(contrib: np.ndarray) -> np.ndarray:
    """Deterministic owner per box from the contributor matrix.

    Step 1: a box with a single contributor is owned by it ("taken").
    Step 2/3: multi-contributor boxes are assigned, in box order, to
    whichever of their contributors currently owns the fewest boxes
    (lowest rank on ties) — the paper's "balance communication load"
    heuristic, computed identically on every rank.

    Boxes with *no* contributor (impossible for a pruned tree, but kept
    total) fall to rank 0.
    """
    nranks, nboxes = contrib.shape
    owner = np.full(nboxes, -1, dtype=np.int64)
    ncontrib = contrib.sum(axis=0)
    # step 1: sole contributors take their boxes (one vectorised argmax;
    # their load lands before any balancing decision, like the paper's
    # "taken" pre-pass)
    sole = np.nonzero(ncontrib == 1)[0]
    if sole.size:
        owner[sole] = np.argmax(contrib[:, sole], axis=0)
        load = np.bincount(owner[sole], minlength=nranks).astype(np.int64)
    else:
        load = np.zeros(nranks, dtype=np.int64)
    # steps 2-3: deterministic balancing of the rest.  The selection is
    # inherently sequential (each assignment feeds the next load
    # comparison), but the per-box contributor lists come from one
    # nonzero sweep in CSR form instead of a column slice per box.
    multi = np.nonzero(ncontrib != 1)[0]
    if multi.size:
        box_pos, rank_flat = np.nonzero(contrib[:, multi].T)
        seg = np.searchsorted(box_pos, np.arange(multi.size + 1))
        for j, b in enumerate(multi):
            ranks = rank_flat[seg[j]:seg[j + 1]]
            if ranks.size == 0:
                owner[b] = 0
                continue
            r = int(ranks[np.argmin(load[ranks])])
            owner[b] = r
            load[r] += 1
    return owner
