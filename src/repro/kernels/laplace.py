"""Laplace single-layer kernel ``S(x, y) = 1/(4 pi r)`` (Appendix A)."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

_FOUR_PI = 4.0 * np.pi


class LaplaceKernel(Kernel):
    """Fundamental solution of ``-Delta u = 0`` in 3D.

    Scalar, homogeneous of degree -1; the workhorse kernel for which
    classical analytic FMM exists and against which the paper benchmarks
    its kernel-independent scheme.
    """

    name = "laplace"
    source_dof = 1
    target_dof = 1
    homogeneity = -1.0
    # 3 subs + 3 mults + 2 adds (r^2), rsqrt, scale, multiply-accumulate
    flops_per_pair = 13

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        _, inv_r = self._displacements(targets, sources)
        return inv_r / _FOUR_PI
