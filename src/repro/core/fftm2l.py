"""FFT-accelerated M2L translations.

Section 1 of the paper: "the multipole-to-local translations are
accelerated using local FFTs, resulting in performances that are on par
with the fastest known adaptive FMM implementations".

Why this works: both the upward equivalent surface of a source box ``A``
and the downward check surface of a same-level target box ``B`` are the
boundary nodes of congruent ``p^3`` lattices with spacing
``h = 2 * inner * r / (p - 1)``.  Writing the target node as
``x_t = c_B - inner*r + h*t`` and the source node as
``y_s = c_A - inner*r + h*s`` (``t, s`` lattice multi-indices), every
pairwise displacement is ``x_t - y_s = (c_B - c_A) + h * (t - s)`` — a
function of ``t - s`` only.  The check-potential evaluation is therefore
a 3-D discrete convolution with the kernel tensor
``T[d] = G((c_B - c_A) + h d)``, which we embed in a ``(2p)^3`` circulant
and apply with FFTs:

- one forward FFT per *source* box (amortised over all its V-interactions),
- one Hadamard multiply-accumulate per box pair,
- one inverse FFT per *target* box.

The kernel tensors depend only on (level, anchor offset); like the dense
operators they rescale across levels for homogeneous kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.precompute import OperatorCache
from repro.core.surfaces import surface_lattice_indices


class FFTM2L:
    """Kernel-tensor cache and grid scatter/gather for FFT M2L."""

    def __init__(self, cache: OperatorCache) -> None:
        self.cache = cache
        self.kernel = cache.kernel
        self.p = cache.p
        self.m = 2 * cache.p  # circulant embedding size
        lattice = surface_lattice_indices(self.p)
        self._surf_ijk = (lattice[:, 0], lattice[:, 1], lattice[:, 2])
        # displacement grid d(i) for circulant index i: i -> i or i - m,
        # with the unused index i == p zeroed out (no valid (t, s) pair
        # has t - s == +-p).
        idx = np.arange(self.m)
        self._disp = np.where(idx < self.p, idx, idx - self.m)
        self._dead = self.p  # circulant index that never contributes
        self._tensors: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}

    # -- kernel tensors ------------------------------------------------------

    def kernel_tensor_hat(
        self, level: int, offset: tuple[int, int, int]
    ) -> np.ndarray:
        """``rfftn`` of the circulant-embedded kernel tensor.

        Returns a complex array of shape
        ``(target_dof, source_dof, m, m, m//2 + 1)``.
        """
        if max(abs(o) for o in offset) < 2:
            raise ValueError(f"offset {offset} is adjacent; not a V-list pair")
        h = self.kernel.homogeneity
        key_level = 0 if h is not None else level
        key = (key_level, tuple(int(o) for o in offset))
        if key not in self._tensors:
            self._tensors[key] = self._build_tensor(key_level, offset)
        base = self._tensors[key]
        if h is None or level == key_level:
            return base
        return base * (2.0 ** (key_level - level)) ** h

    def _build_tensor(self, level: int, offset: tuple[int, int, int]) -> np.ndarray:
        m, p = self.m, self.p
        r = self.cache.half_width(level)
        spacing = 2.0 * self.cache.inner * r / (p - 1)
        delta = np.asarray(offset, dtype=np.float64) * (2.0 * r)
        d = self._disp.astype(np.float64)
        dx, dy, dz = np.meshgrid(d, d, d, indexing="ij")
        pts = np.stack([dx, dy, dz], axis=-1).reshape(-1, 3) * spacing + delta
        qd, md = self.kernel.target_dof, self.kernel.source_dof
        blocks = self.kernel.matrix(pts, np.zeros((1, 3)))  # (m^3 * qd, md)
        grid = blocks.reshape(m, m, m, qd, md).transpose(3, 4, 0, 1, 2)
        grid = np.ascontiguousarray(grid)
        grid[:, :, self._dead, :, :] = 0.0
        grid[:, :, :, self._dead, :] = 0.0
        grid[:, :, :, :, self._dead] = 0.0
        return np.fft.rfftn(grid, axes=(-3, -2, -1))

    # -- grid scatter / gather ------------------------------------------------

    def density_hat(self, ue: np.ndarray) -> np.ndarray:
        """Forward FFT of one box's upward equivalent density.

        ``ue`` is the flat point-major density ``(n_surf * source_dof,)``;
        returns ``(source_dof, m, m, m//2 + 1)`` complex.
        """
        md = self.kernel.source_dof
        vals = ue.reshape(-1, md)
        grid = np.zeros((md, self.m, self.m, self.m))
        i, j, k = self._surf_ijk
        grid[:, i, j, k] = vals.T
        return np.fft.rfftn(grid, axes=(-3, -2, -1))

    def accumulate(
        self,
        acc: np.ndarray,
        tensor_hat: np.ndarray,
        phi_hat: np.ndarray,
    ) -> None:
        """``acc += tensor_hat applied to phi_hat`` in Fourier space.

        ``acc`` has shape ``(target_dof, m, m, m//2 + 1)``.
        """
        acc += np.einsum("qmxyz,mxyz->qxyz", tensor_hat, phi_hat)

    def check_potential(self, acc: np.ndarray) -> np.ndarray:
        """Inverse FFT and surface-node gather.

        Returns the flat point-major downward check potential
        ``(n_surf * target_dof,)``.
        """
        full = np.fft.irfftn(acc, s=(self.m, self.m, self.m), axes=(-3, -2, -1))
        i, j, k = self._surf_ijk
        return np.ascontiguousarray(full[:, i, j, k].T).reshape(-1)

    # -- flop accounting -------------------------------------------------------

    def flops_per_pair(self) -> float:
        """Real flops of one Hadamard multiply-accumulate (per box pair)."""
        nfreq = self.m * self.m * (self.m // 2 + 1)
        qd, md = self.kernel.target_dof, self.kernel.source_dof
        return 8.0 * qd * md * nfreq

    def flops_per_fft(self) -> float:
        """Approximate real flops of one forward or inverse grid FFT."""
        n = self.m**3
        return 5.0 * n * np.log2(n)
