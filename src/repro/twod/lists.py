"""U/V/W/X interaction lists on the quadtree.

Identical definitions to the 3D case (see :mod:`repro.octree.lists`),
with 8 colleagues instead of 26 and at most ``6^2 - 3^2 = 27`` V-list
entries per box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.twod.quadtree import Quadtree, boxes_adjacent_2d


@dataclass
class InteractionLists2D:
    U: list[np.ndarray]
    V: list[np.ndarray]
    W: list[np.ndarray]
    X: list[np.ndarray]

    def counts(self) -> dict[str, int]:
        return {
            "U": sum(len(u) for u in self.U),
            "V": sum(len(v) for v in self.V),
            "W": sum(len(w) for w in self.W),
            "X": sum(len(x) for x in self.X),
        }


def build_lists_2d(tree: Quadtree) -> InteractionLists2D:
    """Construct the adaptive lists; same walk as the 3D version."""
    nb = tree.nboxes
    U: list[set[int]] = [set() for _ in range(nb)]
    V: list[set[int]] = [set() for _ in range(nb)]
    W: list[set[int]] = [set() for _ in range(nb)]
    X: list[set[int]] = [set() for _ in range(nb)]
    boxes = tree.boxes

    for b in boxes:
        if b.parent >= 0:
            for pc in tree.colleagues(b.parent, include_self=True):
                for child in boxes[pc].children:
                    if child != b.index and not boxes_adjacent_2d(
                        boxes[child], b
                    ):
                        V[b.index].add(child)
        if not b.is_leaf:
            continue
        U[b.index].add(b.index)
        for col in tree.colleagues(b.index):
            stack = [col]
            while stack:
                a = stack.pop()
                abox = boxes[a]
                if boxes_adjacent_2d(abox, b):
                    if abox.is_leaf:
                        U[b.index].add(a)
                        U[a].add(b.index)
                    else:
                        stack.extend(abox.children)
                else:
                    W[b.index].add(a)
                    X[a].add(b.index)

    def _freeze(sets):
        return [np.array(sorted(s), dtype=np.int64) for s in sets]

    return InteractionLists2D(
        U=_freeze(U), V=_freeze(V), W=_freeze(W), X=_freeze(X)
    )
