"""Surface patches — the unit of parallel data partitioning.

Section 3.1: "We take advantage of the fact that our input is a set of
surface patches on which the particles are generated. ... assign to each
patch a weight which in the simplest case is equal to the number of
particles in that patch.  Second, we partition the clusters into groups
with equal weights and assign each group to one processor."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SurfacePatch:
    """A group of particles generated from one input surface.

    Attributes
    ----------
    points:
        ``(n, 3)`` particle positions sampled on the patch.
    weight:
        Partitioning weight; the simplest choice (and the paper's) is the
        particle count, but work estimates from a previous time step may
        be substituted.
    """

    points: np.ndarray
    weight: float

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError(f"patch points must be (n, 3), got {self.points.shape}")
        if self.weight < 0:
            raise ValueError(f"patch weight must be non-negative, got {self.weight}")

    @property
    def centroid(self) -> np.ndarray:
        return self.points.mean(axis=0)


def partition_weights(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Contiguous partition of an ordered weight sequence into equal groups.

    Given weights already ordered along the Morton curve, returns for each
    item the part index in ``[0, nparts)``; parts are contiguous runs with
    near-equal total weight (each item goes to the part whose ideal weight
    interval contains the midpoint of the item's cumulative-weight span).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if weights.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total == 0:
        # no information: deal items round-robin in contiguous blocks
        return np.minimum(
            (np.arange(weights.size) * nparts) // max(weights.size, 1), nparts - 1
        ).astype(np.int64)
    cum = np.cumsum(weights)
    mids = cum - weights / 2.0
    parts = np.floor(mids / total * nparts).astype(np.int64)
    return np.clip(parts, 0, nparts - 1)
