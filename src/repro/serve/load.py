"""Synthetic heavy-traffic load generator for the evaluation service.

Drives an :class:`~repro.serve.service.EvaluationService` with Poisson
arrivals (exponential inter-arrival gaps at a target request rate) of
random densities, awaits every response, and reports the per-request
latency percentiles, sustained throughput and batching statistics the
serve smoke job asserts on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.serve.service import EvaluationService, percentile_summary


@dataclass
class LoadReport:
    """Outcome of one synthetic load run."""

    requests: int
    completed: int
    dropped: int
    duration: float
    throughput: float  # completed requests per second
    p50: float
    p95: float
    p99: float
    batches: int
    mean_batch: float

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "dropped": self.dropped,
            "duration_s": self.duration,
            "throughput_rps": self.throughput,
            "latency_p50_s": self.p50,
            "latency_p95_s": self.p95,
            "latency_p99_s": self.p99,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
        }


async def _drive(
    service: EvaluationService,
    key: tuple[str, int, int],
    densities: list[np.ndarray],
    gaps: np.ndarray,
) -> tuple[int, int]:
    """Launch requests on the Poisson schedule; await all responses."""
    tasks: list[asyncio.Task] = []
    for density, gap in zip(densities, gaps):
        tasks.append(asyncio.ensure_future(service.evaluate(key, density)))
        if gap > 0.0:
            await asyncio.sleep(float(gap))
    results = await asyncio.gather(*tasks, return_exceptions=True)
    failed = sum(1 for r in results if isinstance(r, BaseException))
    return len(results) - failed, failed


def run_load(
    service: EvaluationService,
    key: tuple[str, int, int],
    nrequests: int = 64,
    rate: float = 500.0,
    seed: int = 0,
) -> LoadReport:
    """One synchronous load run: start, drive, stop, report.

    ``rate`` is the mean Poisson arrival rate in requests/second; the
    draws use a seeded generator so runs are reproducible.
    """
    if nrequests < 1:
        raise ValueError(f"nrequests must be >= 1, got {nrequests}")
    if rate <= 0.0:
        raise ValueError(f"rate must be > 0, got {rate}")
    op = service.registry.get(key)
    n = op.tree.sources.shape[0]
    dof = op.kernel.source_dof
    rng = np.random.default_rng(seed)
    densities = [rng.standard_normal((n, dof)) for _ in range(nrequests)]
    gaps = rng.exponential(1.0 / rate, size=nrequests)

    async def main() -> tuple[int, int, float]:
        await service.start()
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        completed, failed = await _drive(service, key, densities, gaps)
        duration = loop.time() - t0
        await service.stop()
        return completed, failed, duration

    completed, failed, duration = asyncio.run(main())
    stats = service.stats
    pct = percentile_summary(stats.latencies)
    return LoadReport(
        requests=nrequests,
        completed=completed,
        dropped=failed,
        duration=duration,
        throughput=completed / duration if duration > 0 else 0.0,
        p50=pct["p50"],
        p95=pct["p95"],
        p99=pct["p99"],
        batches=stats.batches,
        mean_batch=stats.mean_batch,
    )
