"""Static certification of compiled execution plans.

Five checks run over the plan IR of :mod:`repro.analysis.planir` —
no apply is executed, yet together they certify the properties a run
would exhibit:

``dataflow``
    Region-granular buffer liveness: every read is preceded by a write
    (or delivered by the exchange), no read follows a release, and every
    written region is eventually read unless the IR declares it
    live-out.  Dead stores are compute work a run would silently waste.
``types``
    Dtype-flow: each node's output precision class must cover the
    precision of everything it reads, and must match its stage's
    declared dtype class, unless the node is explicitly marked
    ``narrowing`` (no plan stage narrows today, so any narrowing is a
    failure — the static half of the mixed-precision guardrail).
``schedule``
    The dependency DAG is acyclic (every edge points backward in
    program order) and the overlap schedule is happens-before
    consistent: each exchange's ``post`` precedes its ``relay`` and
    ``wait``, and every read of an exchange-delivered region is ordered
    after the communication node that stores it.  This is the static
    counterpart of the dynamic race detector.
``flops``
    The summed per-stage flop estimates equal the
    :mod:`repro.perfmodel.costs` work volumes phase by phase — exactly,
    not approximately: every term is an integer-valued float below
    2**53, so float summation is associative here and ``==`` is the
    correct comparison.
``metadata``
    Every stage node traces back to a registered plan-stage class whose
    :class:`~repro.core.plan.StageMeta` covers the buffer families the
    node actually touches.

There is no waiver mechanism: a finding fails certification.  The
``seed_*`` functions plant one defect each (a reordered wait, a
silently narrowed dtype, a dead store) and :func:`run_selftests`
asserts each is caught by *exactly* the intended check — the proof that
a clean certification is a property of the plan, not of a vacuous
checker.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.planir import (
    COMM_KINDS,
    COMPUTE_KINDS,
    FLOP_PHASES,
    PlanIR,
    StageNode,
    extract_plan_ir,
    extract_rank_ir,
    rebuild_deps,
    region_family,
)
from repro.core.fmm import FMMOptions, KIFMM
from repro.core.plan import PLAN_STAGES
from repro.perfmodel.costs import compute_work

CHECKS = ("dataflow", "types", "schedule", "flops", "metadata")

#: Precision class (mantissa width) of each dtype the plans use.
#: Complex dtypes share the class of their component floats: a
#: float64 → complex128 transform loses nothing.
_PRECISION = {
    "float64": 64, "complex128": 64,
    "float32": 32, "complex64": 32,
    "float16": 16,
}


@dataclass(frozen=True)
class Finding:
    """One certification failure, pinned to a node and region."""

    check: str
    node: str
    region: str
    message: str

    def __str__(self) -> str:
        where = f" [{self.region}]" if self.region else ""
        return f"{self.check}: {self.node}{where}: {self.message}"


@dataclass
class PlanReport:
    """The result of certifying one plan IR."""

    name: str
    findings: list[Finding]
    counts: dict[str, int]
    flop_expected: dict[str, float] = field(default_factory=dict)
    flop_actual: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def flop_deltas(self) -> dict[str, float]:
        return {
            p: self.flop_actual.get(p, 0.0) - self.flop_expected.get(p, 0.0)
            for p in FLOP_PHASES
        }

    def summary(self) -> str:
        if self.ok:
            return f"{self.name}: certified ({len(self.counts)} checks clean)"
        parts = ", ".join(
            f"{c}={n}" for c, n in sorted(self.counts.items()) if n
        )
        return f"{self.name}: FAILED ({parts})"


def _precision(dtype: str) -> int:
    return _PRECISION.get(dtype, 64)


def _comm_written(ir: PlanIR) -> dict[str, int]:
    """Region → index of the communication node that delivers it."""
    return {
        w: n.index
        for n in ir.nodes if n.kind in COMM_KINDS
        for w in n.writes
    }


def check_dataflow(ir: PlanIR) -> list[Finding]:
    """Use-before-write, use-after-release, and dead stores.

    Regions delivered by communication nodes count as defined for the
    whole program here — *ordering* reads after the delivering node is
    the schedule check's job, and splitting the two keeps each seeded
    defect attributable to exactly one check.
    """
    findings: list[Finding] = []
    comm_defined = set(_comm_written(ir))
    written: set[str] = set()
    released: dict[str, str] = {}
    read_anywhere: set[str] = set()
    for n in ir.nodes:
        for r in n.reads:
            read_anywhere.add(r)
            if r in released and r not in n.releases:
                findings.append(Finding(
                    "dataflow", n.name, r,
                    f"read after release by {released[r]}",
                ))
            elif r not in written and r not in comm_defined:
                findings.append(Finding(
                    "dataflow", n.name, r, "read before any write",
                ))
            if r not in ir.buffers:
                findings.append(Finding(
                    "dataflow", n.name, r, "read of undeclared buffer region",
                ))
        if n.kind in COMPUTE_KINDS:
            written.update(n.writes)
        for rel in n.releases:
            released[rel] = n.name
    for n in ir.nodes:
        if n.kind not in COMPUTE_KINDS:
            continue
        for w in n.writes:
            if w not in read_anywhere and w not in ir.live_out:
                findings.append(Finding(
                    "dataflow", n.name, w,
                    "dead store: region is never read and not live-out",
                ))
    return findings


def check_types(ir: PlanIR) -> list[Finding]:
    """Dtype propagation with explicit-narrowing enforcement."""
    findings: list[Finding] = []
    for n in ir.nodes:
        if n.kind not in COMPUTE_KINDS or not n.writes:
            continue
        out_prec = _precision(n.dtype)
        for r in n.reads:
            spec = ir.buffers.get(r)
            if spec is None:
                continue
            if out_prec < _precision(spec.dtype) and not n.narrowing:
                findings.append(Finding(
                    "types", n.name, r,
                    f"silent narrowing: reads {spec.dtype}, writes "
                    f"{n.dtype} without narrowing=True",
                ))
        for w in n.writes:
            spec = ir.buffers.get(w)
            if spec is None:
                findings.append(Finding(
                    "types", n.name, w, "write to undeclared buffer region",
                ))
            elif out_prec < _precision(spec.dtype) and not n.narrowing:
                findings.append(Finding(
                    "types", n.name, w,
                    f"silent narrowing: writes {n.dtype} into a "
                    f"{spec.dtype} buffer without narrowing=True",
                ))
        if n.stage is not None and n.stage in PLAN_STAGES:
            meta = PLAN_STAGES[n.stage].stage_meta
            if out_prec < _precision(meta.dtype) and not n.narrowing:
                findings.append(Finding(
                    "types", n.name, "",
                    f"silent narrowing: stage {n.stage} declares "
                    f"{meta.dtype}, node writes {n.dtype}",
                ))
    return findings


def check_schedule(ir: PlanIR) -> list[Finding]:
    """DAG acyclicity and happens-before of the overlap schedule."""
    findings: list[Finding] = []
    for n in ir.nodes:
        for d in n.deps:
            if d >= n.index:
                findings.append(Finding(
                    "schedule", n.name, "",
                    f"dependency cycle: edge from node {d} does not point "
                    "backward in program order",
                ))
    posts = {
        n.name.split(":", 1)[1]: n.index
        for n in ir.nodes if n.kind == "post"
    }
    for n in ir.nodes:
        if n.kind in ("relay", "wait"):
            kind_key = n.name.split(":", 1)[1]
            if kind_key not in posts:
                findings.append(Finding(
                    "schedule", n.name, "",
                    f"{n.kind} of exchange {kind_key!r} has no post",
                ))
            elif posts[kind_key] >= n.index:
                findings.append(Finding(
                    "schedule", n.name, "",
                    f"{n.kind} scheduled before post:{kind_key}",
                ))
    delivered = _comm_written(ir)
    for n in ir.nodes:
        if n.kind in COMM_KINDS:
            continue
        for r in n.reads:
            if r in delivered and delivered[r] >= n.index:
                writer = ir.nodes[delivered[r]].name
                findings.append(Finding(
                    "schedule", n.name, r,
                    f"happens-before violation: reads exchange-delivered "
                    f"region before {writer} stores it",
                ))
    return findings


def check_flops(ir: PlanIR, expected: dict[str, float]) -> list[Finding]:
    """Exact flop-budget identity against the performance model."""
    findings: list[Finding] = []
    actual = ir.flop_totals()
    for n in ir.nodes:
        if not np.isfinite(n.flops) or n.flops < 0:
            findings.append(Finding(
                "flops", n.name, "", f"invalid flop estimate {n.flops!r}",
            ))
    for phase in FLOP_PHASES:
        a, e = actual.get(phase, 0.0), expected.get(phase, 0.0)
        if a != e:
            findings.append(Finding(
                "flops", f"phase:{phase}", "",
                f"stage estimates sum to {a!r}, performance model "
                f"gives {e!r} (delta {a - e:+g})",
            ))
    return findings


def check_metadata(ir: PlanIR) -> list[Finding]:
    """Stage nodes must match their registered StageMeta declarations."""
    findings: list[Finding] = []
    for n in ir.nodes:
        if n.stage is None:
            continue
        cls = PLAN_STAGES.get(n.stage)
        if cls is None:
            findings.append(Finding(
                "metadata", n.name, "",
                f"stage {n.stage!r} is not a registered plan stage",
            ))
            continue
        meta = cls.stage_meta
        allowed_reads = set(meta.reads) | set(meta.writes)
        for r in n.reads:
            fam = region_family(r)
            if fam not in allowed_reads:
                findings.append(Finding(
                    "metadata", n.name, r,
                    f"stage {n.stage} does not declare reads of "
                    f"family {fam!r}",
                ))
        for w in n.writes:
            fam = region_family(w)
            if fam not in meta.writes:
                findings.append(Finding(
                    "metadata", n.name, w,
                    f"stage {n.stage} does not declare writes of "
                    f"family {fam!r}",
                ))
    return findings


def run_checks(
    ir: PlanIR,
    expected_flops: dict[str, float] | None = None,
    name: str = "plan",
) -> PlanReport:
    """All five checks over one IR; ``expected_flops`` enables the
    flop-budget identity (phases absent from the dict default to 0)."""
    findings: list[Finding] = []
    findings += check_dataflow(ir)
    findings += check_types(ir)
    findings += check_schedule(ir)
    expected = expected_flops if expected_flops is not None else {}
    if expected_flops is not None:
        findings += check_flops(ir, expected)
    findings += check_metadata(ir)
    counts = {c: 0 for c in CHECKS}
    for f in findings:
        counts[f.check] = counts.get(f.check, 0) + 1
    return PlanReport(
        name=name, findings=findings, counts=counts,
        flop_expected=dict(expected), flop_actual=ir.flop_totals(),
    )


# ---------------------------------------------------------------------------
# Certification entry points: build real setups (never an apply) and
# verify their extracted IR against the performance model.
# ---------------------------------------------------------------------------


def sequential_ir(fmm: KIFMM, nrhs: int = 1) -> tuple[PlanIR, dict[str, float]]:
    """IR + expected work volumes of an already-set-up sequential operator.

    Split out from :func:`certify_sequential` so a certification sweep
    can reuse one setup across the ``nrhs`` axis of its matrix.
    """
    if fmm._plan is None:
        raise ValueError("configuration does not produce a batched plan")
    opts = fmm.options
    sched = fmm.m2l_schedule
    ir = extract_plan_ir(
        fmm._plan, fmm.kernel, fmm.cache, m2l_mode=sched, nrhs=nrhs,
    )
    expected = compute_work(
        fmm.tree, fmm.lists, fmm.kernel, opts.p, m2l=sched, nrhs=nrhs,
        rsvd_rank=fmm.cache.m2l_rsvd_rank,
    ).totals()
    return ir, expected


def certify_sequential(
    kernel,
    points: np.ndarray,
    opts: FMMOptions,
    *,
    nrhs: int = 1,
    name: str = "sequential",
) -> PlanReport:
    """Certify the sequential batched plan for one configuration."""
    ir, expected = sequential_ir(KIFMM(kernel, opts).setup(points), nrhs)
    return run_checks(ir, expected, name=name)


def rank_states(
    kernel,
    points: np.ndarray,
    opts: FMMOptions,
    nranks: int,
    *,
    cache=None,
    fft=None,
) -> list:
    """Every rank's persistent state (setup only — no apply, no density).

    Runs :func:`~repro.parallel.pfmm.rank_setup` under the simulated
    SPMD runtime exactly as a real parallel run would.
    """
    from repro.core.fftm2l import FFTM2L
    from repro.core.precompute import OperatorCache
    from repro.parallel.partition import partition_points
    from repro.parallel.pfmm import _global_root, rank_setup
    from repro.parallel.simmpi import PerRank, run_spmd

    corner, side = _global_root(points)
    if cache is None:
        cache = OperatorCache(
            kernel, opts.p, side,
            inner=opts.inner, outer=opts.outer, rcond=opts.rcond,
        )
    if fft is None and opts.m2l in ("fft", "auto"):
        fft = FFTM2L(cache)
    parts = partition_points(points, nranks)

    def rank_main(comm, idx):
        return rank_setup(
            comm, kernel, points[idx], opts,
            root=(corner, side), cache=cache, fft=fft,
        )

    return run_spmd(nranks, rank_main, PerRank(parts))


def rank_ir(
    state, nrhs: int = 1, overlap: bool = True
) -> tuple[PlanIR, dict[str, float]]:
    """One rank's IR and expected work volumes.

    The expected volumes gate the rank's downward partners by *global*
    source counts and its partial upward pass by its *local* counts —
    the redundant-near-root-work accounting of the paper's three-stage
    algorithm.
    """
    ir = extract_rank_ir(state, nrhs=nrhs, overlap=overlap)
    kernel, opts = state.kernel, state.options
    local_nsrc = np.fromiter(
        (b.nsrc for b in state.tree.boxes), np.float64, state.tree.nboxes,
    )
    expected = compute_work(
        state.tree, state.lists, kernel, opts.p, m2l=state.m2l_schedule,
        rsvd_rank=state.cache.m2l_rsvd_rank,
        global_nsrc=state.ptree.global_nsrc,
        global_ntrg=np.fromiter(
            (b.ntrg for b in state.tree.boxes), np.float64,
            state.tree.nboxes,
        ),
        nrhs=nrhs, up_nsrc=local_nsrc,
        v_targets=getattr(state, "v_compute", None),
    ).totals()
    return ir, expected


def rank_irs(
    kernel,
    points: np.ndarray,
    opts: FMMOptions,
    nranks: int,
    *,
    nrhs: int = 1,
    overlap: bool = True,
    cache=None,
    fft=None,
) -> list[tuple[PlanIR, dict[str, float]]]:
    """Setup plus per-rank IR extraction in one call (see the parts)."""
    return [
        rank_ir(state, nrhs=nrhs, overlap=overlap)
        for state in rank_states(
            kernel, points, opts, nranks, cache=cache, fft=fft,
        )
    ]


def certify_parallel(
    kernel,
    points: np.ndarray,
    opts: FMMOptions,
    nranks: int,
    *,
    nrhs: int = 1,
    overlap: bool = True,
    name: str = "parallel",
    cache=None,
    fft=None,
) -> list[PlanReport]:
    """Certify every rank's LET-local plan plus overlap schedule."""
    return [
        run_checks(ir, expected, name=f"{name}:rank{r}")
        for r, (ir, expected) in enumerate(
            rank_irs(
                kernel, points, opts, nranks,
                nrhs=nrhs, overlap=overlap, cache=cache, fft=fft,
            )
        )
    ]


# ---------------------------------------------------------------------------
# Seeded defects: each must be caught by exactly the intended check.
# ---------------------------------------------------------------------------


def seed_reordered_wait(ir: PlanIR) -> PlanIR:
    """Move a scatter wait after the first consumer of its ghost data.

    The happens-before defect of the overlap window: compute reads
    exchange-delivered rows before the receive completes.  Intended
    check: ``schedule``.
    """
    ir = copy.deepcopy(ir)
    for wi, wait in enumerate(ir.nodes):
        if wait.kind != "wait" or not wait.writes:
            continue
        regions = set(wait.writes)
        for ri, reader in enumerate(ir.nodes):
            if ri > wi and regions & set(reader.reads):
                node = ir.nodes.pop(wi)
                ir.nodes.insert(ri, node)  # ri shifted down by the pop
                return rebuild_deps(ir)
    raise ValueError(
        "IR has no wait node with a downstream ghost-data consumer "
        "(seed requires a multi-rank overlap plan)"
    )


def seed_narrowed_dtype(ir: PlanIR) -> PlanIR:
    """Silently narrow one float64 compute stage to float32.

    Models a kernel dropping precision without declaring it.  Intended
    check: ``types``.
    """
    ir = copy.deepcopy(ir)
    for n in ir.nodes:
        if (
            n.kind == "compute" and n.dtype == "float64"
            and n.reads and n.writes
        ):
            n.dtype = "float32"
            return ir
    raise ValueError("IR has no float64 compute node to narrow")


def seed_dead_store(ir: PlanIR) -> PlanIR:
    """Append a store to a scratch region nothing ever reads.

    Models plan compilation emitting work whose result is dropped.
    Intended check: ``dataflow``.
    """
    ir = copy.deepcopy(ir)
    ir.buffers["seeded_scratch"] = dataclasses.replace(
        ir.buffers["pot"], name="seeded_scratch", shape=(1, 1),
    )
    node = StageNode(
        index=0, name="seeded_dead", phase="io", kind="compute",
        stage=None, reads=("pot",), writes=("seeded_scratch",),
        releases=(), flops=0.0, dtype="float64",
    )
    ir.nodes.insert(len(ir.nodes) - 1, node)
    return rebuild_deps(ir)


SEEDS = {
    "reordered-wait": (seed_reordered_wait, "schedule"),
    "narrowed-dtype": (seed_narrowed_dtype, "types"),
    "dead-store": (seed_dead_store, "dataflow"),
}


def run_selftests(
    ir: PlanIR, expected: dict[str, float]
) -> list[tuple[str, bool, str]]:
    """Plant each seeded defect and verify exactly its check catches it.

    Returns ``(seed name, passed, detail)`` rows.  A self-test passes
    only if the seeded IR produces findings, *every* finding belongs to
    the intended check, and the unseeded IR is clean — so a checker that
    flags everything (or nothing) fails its own certification.
    """
    results: list[tuple[str, bool, str]] = []
    base = run_checks(ir, expected, name="selftest-base")
    if not base.ok:
        return [(
            "baseline", False,
            f"unseeded IR not clean: {base.findings[0]}",
        )]
    for seed_name, (seed, intended) in SEEDS.items():
        report = run_checks(seed(ir), expected, name=f"seed:{seed_name}")
        fired = {f.check for f in report.findings}
        if not report.findings:
            results.append((seed_name, False, "defect not detected"))
        elif fired != {intended}:
            results.append((
                seed_name, False,
                f"expected only {intended!r} to fire, got {sorted(fired)}",
            ))
        else:
            results.append((
                seed_name, True,
                f"caught by {intended} "
                f"({report.counts[intended]} finding(s))",
            ))
    return results
