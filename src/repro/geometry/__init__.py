"""Workload geometries from the paper's Section 4 problem setup.

"The input is a set of surfaces, which we then sample to get the particle
positions."  Two particle sets are used:

- 512 spheres centered at an 8x8x8 Cartesian grid in the cube [-1, 1]^3 —
  uniform at low sampling rates, locally non-uniform at high rates because
  the per-sphere sampling is non-uniform;
- a non-uniform distribution clustered at the eight corners of the cube.
"""

from repro.geometry.patches import SurfacePatch, partition_weights
from repro.geometry.spheres import sample_sphere, sphere_grid_patches, sphere_grid_points
from repro.geometry.distributions import corner_clusters, uniform_cube

__all__ = [
    "SurfacePatch",
    "partition_weights",
    "sample_sphere",
    "sphere_grid_patches",
    "sphere_grid_points",
    "corner_clusters",
    "uniform_cube",
]
