"""Single-layer kernels of 2D elliptic PDEs.

The 2D fundamental solutions carry logarithms (Laplace, Stokes) or
modified Bessel functions (screened Laplace), none of which have the
homogeneity the 3D kernels enjoy — a good stress test of the
kernel-independent machinery, which needs nothing but evaluations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
from scipy.special import k0

_TWO_PI = 2.0 * np.pi


class Kernel2D(ABC):
    """A single-layer kernel ``G(x, y)`` in the plane.

    Mirrors :class:`repro.kernels.base.Kernel` with 2-vectors.
    """

    name: str = "abstract2d"
    dim: int = 2
    source_dof: int = 1
    target_dof: int = 1
    flops_per_pair: int = 0

    @abstractmethod
    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """``(nt * target_dof, ns * source_dof)`` interaction matrix."""

    def apply(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        density: np.ndarray,
        block: int = 4096,
    ) -> np.ndarray:
        """Matrix-free blocked evaluation ``u = K phi``."""
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        phi = np.asarray(density, dtype=np.float64).reshape(-1)
        if phi.shape[0] != sources.shape[0] * self.source_dof:
            raise ValueError(
                f"density has {phi.shape[0]} entries, expected "
                f"{sources.shape[0] * self.source_dof}"
            )
        out = np.empty(targets.shape[0] * self.target_dof)
        for start in range(0, targets.shape[0], block):
            stop = min(start + block, targets.shape[0])
            sub = self.matrix(targets[start:stop], sources)
            out[start * self.target_dof : stop * self.target_dof] = sub @ phi
        return out.reshape(targets.shape[0], self.target_dof)

    @staticmethod
    def _displacements(
        targets: np.ndarray, sources: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[1] != 2:
            raise ValueError(f"targets must be (nt, 2), got {targets.shape}")
        if sources.ndim != 2 or sources.shape[1] != 2:
            raise ValueError(f"sources must be (ns, 2), got {sources.shape}")
        diff = targets[:, None, :] - sources[None, :, :]
        r2 = np.einsum("tsd,tsd->ts", diff, diff)
        return diff, r2

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Laplace2DKernel(Kernel2D):
    """``S(x, y) = -log(r) / (2 pi)``, the 2D Laplace kernel."""

    name = "laplace2d"
    flops_per_pair = 14

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        _, r2 = self._displacements(targets, sources)
        with np.errstate(divide="ignore"):
            vals = np.where(r2 > 0.0, -0.5 * np.log(r2), 0.0)
        return vals / _TWO_PI


class ModifiedLaplace2DKernel(Kernel2D):
    """``S(x, y) = K_0(lam r) / (2 pi)`` for ``alpha u - Delta u = 0``.

    ``K_0`` is the modified Bessel function of the second kind — the
    kind of special function a kernel-dependent FMM would have to expand
    analytically, and exactly what the paper's approach sidesteps.
    """

    name = "modified_laplace2d"
    flops_per_pair = 30

    def __init__(self, lam: float = 1.0) -> None:
        if lam <= 0:
            raise ValueError(f"screening parameter must be positive, got {lam}")
        self.lam = float(lam)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        _, r2 = self._displacements(targets, sources)
        r = np.sqrt(r2)
        with np.errstate(invalid="ignore"):
            vals = np.where(r > 0.0, k0(self.lam * r), 0.0)
        return np.nan_to_num(vals, nan=0.0, posinf=0.0) / _TWO_PI

    def __repr__(self) -> str:
        return f"ModifiedLaplace2DKernel(lam={self.lam})"


class Stokes2DKernel(Kernel2D):
    """The 2D Stokeslet ``(1/4 pi mu)(-log(r) I + r (x) r / r^2)``."""

    name = "stokes2d"
    source_dof = 2
    target_dof = 2
    flops_per_pair = 32

    def __init__(self, mu: float = 1.0) -> None:
        if mu <= 0:
            raise ValueError(f"viscosity must be positive, got {mu}")
        self.mu = float(mu)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        diff, r2 = self._displacements(targets, sources)
        nt, ns = r2.shape
        with np.errstate(divide="ignore", invalid="ignore"):
            logterm = np.where(r2 > 0.0, -0.5 * np.log(r2), 0.0)
            inv_r2 = np.where(r2 > 0.0, 1.0 / r2, 0.0)
        blocks = np.einsum("tsi,tsj->tsij", diff, diff) * inv_r2[:, :, None, None]
        idx = np.arange(2)
        blocks[:, :, idx, idx] += logterm[:, :, None]
        blocks /= 4.0 * np.pi * self.mu
        return blocks.transpose(0, 2, 1, 3).reshape(nt * 2, ns * 2)

    def __repr__(self) -> str:
        return f"Stokes2DKernel(mu={self.mu})"
