"""Property-based tests on the full FMM (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fmm import FMMOptions, KIFMM
from repro.kernels import LaplaceKernel
from repro.kernels.direct import direct_evaluate, relative_error


@st.composite
def point_cloud(draw):
    """Random size, seed and clustering level."""
    n = draw(st.integers(min_value=5, max_value=250))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    cluster = draw(st.booleans())
    rng = np.random.default_rng(seed)
    if cluster:
        centers = rng.uniform(-1, 1, size=(4, 3))
        pts = np.vstack(
            [c + 0.05 * rng.standard_normal((max(1, n // 4), 3)) for c in centers]
        )[:n]
    else:
        pts = rng.uniform(-1, 1, size=(n, 3))
    return pts, rng


class TestFMMProperties:
    @given(point_cloud())
    @settings(max_examples=15, deadline=None)
    def test_accuracy_any_configuration(self, cloud):
        """FMM stays within tolerance for arbitrary sizes/distributions."""
        pts, rng = cloud
        n = pts.shape[0]
        phi = rng.standard_normal((n, 1))
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=5, max_points=20)).setup(pts)
        u = fmm.apply(phi)
        exact = direct_evaluate(LaplaceKernel(), pts, pts, phi)
        assert relative_error(u, exact) < 5e-3

    @given(point_cloud(), st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=10, deadline=None)
    def test_scaling_linearity(self, cloud, alpha):
        pts, rng = cloud
        n = pts.shape[0]
        phi = rng.standard_normal((n, 1))
        fmm = KIFMM(LaplaceKernel(), FMMOptions(p=4, max_points=20)).setup(pts)
        u1 = fmm.apply(phi)
        u2 = fmm.apply(alpha * phi)
        assert np.allclose(u2, alpha * u1, atol=1e-10 * max(1.0, abs(alpha)))

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_translation_invariance(self, seed):
        """Shifting the whole geometry shifts nothing in the potentials."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-1, 1, size=(150, 3))
        phi = rng.standard_normal((150, 1))
        opts = FMMOptions(p=5, max_points=20)
        u0 = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
        shift = rng.uniform(-10, 10, size=3)
        u1 = KIFMM(LaplaceKernel(), opts).setup(pts + shift).apply(phi)
        assert relative_error(u1, u0) < 1e-6

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_geometric_scale_invariance(self, seed):
        """Laplace homogeneity: scaling geometry by a scales u by 1/a."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-1, 1, size=(150, 3))
        phi = rng.standard_normal((150, 1))
        a = 3.5
        opts = FMMOptions(p=5, max_points=20)
        u0 = KIFMM(LaplaceKernel(), opts).setup(pts).apply(phi)
        u1 = KIFMM(LaplaceKernel(), opts).setup(a * pts).apply(phi)
        assert relative_error(u1, u0 / a) < 1e-6

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=10, deadline=None)
    def test_superposition_of_sources(self, nsplit):
        """Potential of a union equals sum of the parts' potentials."""
        rng = np.random.default_rng(nsplit)
        src = rng.uniform(-1, 1, size=(200, 3))
        trg = rng.uniform(-0.5, 0.5, size=(60, 3))
        phi = rng.standard_normal((200, 1))
        opts = FMMOptions(p=5, max_points=20)
        full = KIFMM(LaplaceKernel(), opts).setup(src, trg).apply(phi)
        k = min(nsplit, 199)
        ua = KIFMM(LaplaceKernel(), opts).setup(src[:k], trg).apply(phi[:k])
        ub = KIFMM(LaplaceKernel(), opts).setup(src[k:], trg).apply(phi[k:])
        # the parts build different trees, so errors differ within the
        # p=5 discretisation tolerance
        assert relative_error(ua + ub, full) < 1e-4
