"""Parallel tree construction: topology identical to the sequential tree."""

import numpy as np
import pytest

from repro.octree import build_tree
from repro.parallel.partition import partition_points
from repro.parallel.ptree import agree_root_cube, parallel_build_tree
from repro.parallel.simmpi import PerRank, run_spmd

from tests.conftest import clustered_cloud, uniform_cloud


def _build_everywhere(points, nranks, s):
    parts = partition_points(points, nranks)

    def main(comm, idx):
        return parallel_build_tree(comm, points[idx], max_points=s)

    return run_spmd(nranks, main, PerRank(parts)), parts


@pytest.mark.parametrize("nranks", [1, 2, 5])
@pytest.mark.parametrize("cloud", ["uniform", "clustered"])
def test_topology_matches_sequential(rng, nranks, cloud):
    pts = (
        uniform_cloud(rng, 700) if cloud == "uniform" else clustered_cloud(rng, 700)
    )
    s = 25
    seq = build_tree(pts, max_points=s)
    results, _ = _build_everywhere(pts, nranks, s)
    for ptree in results:
        t = ptree.tree
        assert t.nboxes == seq.nboxes
        assert [b.anchor for b in t.boxes] == [b.anchor for b in seq.boxes]
        assert [b.level for b in t.boxes] == [b.level for b in seq.boxes]
        assert [b.children for b in t.boxes] == [b.children for b in seq.boxes]
        # global counts equal the sequential (full-data) counts
        assert np.array_equal(
            ptree.global_nsrc, np.array([b.nsrc for b in seq.boxes])
        )


def test_local_counts_sum_to_global(rng):
    pts = clustered_cloud(rng, 600)
    results, _ = _build_everywhere(pts, 4, 20)
    local_sum = np.sum(
        [[b.nsrc for b in r.tree.boxes] for r in results], axis=0
    )
    assert np.array_equal(local_sum, results[0].global_nsrc)


def test_rank_with_no_points(rng):
    """A rank may own no particles at all (tiny problems, many ranks)."""
    pts = uniform_cloud(rng, 6)
    parts = [np.arange(6), np.empty(0, dtype=np.int64)]

    def main(comm, idx):
        return parallel_build_tree(comm, pts[idx], max_points=3)

    results = run_spmd(2, main, PerRank(parts))
    assert results[0].tree.nboxes == results[1].tree.nboxes


def test_agree_root_cube(rng):
    pts = uniform_cloud(rng, 100)
    parts = partition_points(pts, 3)

    def main(comm, idx):
        return agree_root_cube(comm, pts[idx])

    results = run_spmd(3, main, PerRank(parts))
    corners = [r[0] for r in results]
    sides = [r[1] for r in results]
    assert np.allclose(corners[0], corners[1])
    assert np.allclose(corners[0], corners[2])
    assert sides[0] == sides[1] == sides[2]
    # cube actually contains all points
    assert np.all(pts >= corners[0] - 1e-12)
    assert np.all(pts <= corners[0] + sides[0] + 1e-12)


def test_no_points_anywhere_raises():
    def main(comm):
        return agree_root_cube(comm, np.empty((0, 3)))

    with pytest.raises(ValueError):
        run_spmd(2, main)


def test_contribution_masks(rng):
    pts = clustered_cloud(rng, 400)
    results, parts = _build_everywhere(pts, 3, 20)
    for r, ptree in enumerate(results):
        mask = ptree.local_contributes_src()
        # root contains every local point
        assert mask[0] == (len(parts[r]) > 0)
        for b in ptree.tree.boxes:
            assert mask[b.index] == (b.nsrc > 0)
