"""Per-level M2L backend schedules and the ``auto`` picker.

The V-list translation (M2L) has three interchangeable backends:

``dense``
    One ``(n_surf*qd, n_surf*md)`` GEMM per offset class — highest flop
    count, highest achieved rate.
``fft``
    The paper's circulant-embedded convolution — lowest flop count, but
    the Hadamard stage streams full spectra per pair and reaches only a
    fraction of BLAS-3 throughput at the paper's ``p``.
``rsvd``
    Randomized-SVD-compressed operators applied as two stacked BLAS-3
    GEMMs per offset class (arXiv:2408.07436) — between the two in
    flops, at dense-GEMM rate.

An :class:`M2LSchedule` fixes one backend *per tree level* plus the
factor precision of the rsvd levels.  The uniform modes map every level
to the same backend; ``auto`` picks per level from the level's V-list
statistics with the cost model below.  Both evaluators (planned and
per-box) resolve their schedule from the *same* gated statistics
(:func:`v_stats_from_plan` / :func:`v_stats_from_lists` — parity is
pinned by test), so the two paths always agree on the backends and
their potentials match to backend roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import StageMeta, plan_stage

#: Recognised ``FMMOptions.m2l`` values.
M2L_MODES = ("fft", "dense", "rsvd", "auto")

#: Recognised ``FMMOptions.dtype`` values (rsvd factor precision).
M2L_DTYPES = ("float64", "float32")

#: Relative achieved-throughput weights of the ``auto`` picker.  These
#: are *picker heuristics* calibrated from the BENCH_m2l ablation
#: (fraction of large-GEMM rate each backend achieves at the paper's
#: operating points), NOT part of the certified flop identity: the
#: plancheck flop check compares exact counts; the picker divides those
#: counts by an achievable-rate estimate.  The fft weight reflects the
#: class-major Hadamard's strided spectrum traffic.
_EFFICIENCY = {"dense": 1.0, "rsvd": 1.0, "fft": 0.25}


@plan_stage
@dataclass
class RsvdLevel:
    """Marker stage of the rSVD-compressed per-level V-list pass.

    The evaluators dispatch rsvd levels off the shared
    :class:`~repro.core.plan.VLevel` geometry rather than building a
    separate stage object; this class exists so the plan verifier's IR
    nodes can name a registered stage whose
    :class:`~repro.core.plan.StageMeta` covers their buffer traffic
    (reads upward equivalent densities, accumulates downward check
    potentials — float64 accumulation even in the mixed-precision mode,
    whose narrowing the IR declares on the node, not the stage).
    """

    level: int

    stage_meta = StageMeta(reads=("ue",), writes=("dc",), dtype="float64")


@plan_stage
@dataclass
class CoarseSplit:
    """Marker stage of the coarse-level V-translation split exchange.

    At levels where the box count drops below the rank count, the
    redundant tree-top V translations are split: each target box is
    assigned (deterministic cyclic assignment over its contributor
    ranks) to exactly one rank, which computes the box's downward-check
    contribution and broadcasts the rows along the binomial rank tree.
    The plan verifier's ``post:vsp@L`` / ``wait:vsp@L`` IR nodes name
    this stage: the exchange reads the locally-computed downward check
    rows and delivers the remotely-computed ones.
    """

    level: int

    stage_meta = StageMeta(reads=("dc",), writes=("dc",), dtype="float64")


def coarse_split_levels(
    level_counts, nranks: int
) -> frozenset[int]:
    """Levels whose box count is below the rank count.

    ``level_counts[l]`` is the number of tree boxes at level ``l``.
    These are the levels where the redundant tree-top V work leaves
    ranks idle — the levels the coarse split distributes.  Empty at
    ``nranks == 1`` (every populated level has at least one box).
    """
    return frozenset(
        lvl for lvl, count in enumerate(level_counts)
        if 0 < count < nranks
    )


@dataclass
class M2LSchedule:
    """A resolved per-level V-list backend assignment.

    ``mode`` is the requested ``FMMOptions.m2l`` value, ``dtype`` the
    rsvd factor precision, and ``backends`` maps each level that has
    effective V-list pairs to ``"fft"``, ``"dense"`` or ``"rsvd"``.
    """

    mode: str
    dtype: str
    backends: dict[int, str]

    def backend(self, level: int) -> str:
        """Backend of one level (levels without V pairs default dense)."""
        return self.backends.get(level, "dense")

    @property
    def needs_fft(self) -> bool:
        """Whether any level runs the FFT backend (gates FFTM2L setup)."""
        return any(b == "fft" for b in self.backends.values())

    def describe(self) -> dict:
        """JSON-friendly summary for plan-IR metadata and reports."""
        return {
            "mode": self.mode,
            "dtype": self.dtype,
            "levels": {int(k): v for k, v in sorted(self.backends.items())},
        }


def v_stats_from_plan(plan) -> dict[int, tuple[int, int, int]]:
    """``level -> (npairs, n_src_boxes, n_trg_boxes)`` of a compiled plan.

    The plan's :class:`~repro.core.plan.VLevel` stages already hold the
    effective (gated) pair set, so the stats are a direct read-off.
    """
    return {
        vl.level: (int(vl.npairs), int(vl.src_boxes.size), int(vl.trg_boxes.size))
        for vl in plan.v_levels
        if vl.npairs
    }


def v_stats_from_lists(tree, lists, nsrc=None) -> dict[int, tuple[int, int, int]]:
    """The same statistics from raw interaction lists (the per-box view).

    Gating matches ``build_plan`` exactly — a pair counts iff the target
    box has targets and the source box has sources — so the per-box and
    planned evaluators resolve identical schedules.  ``nsrc`` overrides
    the local per-box source counts (the parallel LET passes global
    counts here, mirroring ``build_plan(partner_nsrc=...)``).
    """
    if nsrc is None:
        nsrc = np.fromiter(
            (b.nsrc for b in tree.boxes), np.float64, tree.nboxes
        )
    npairs: dict[int, int] = {}
    src_boxes: dict[int, set[int]] = {}
    trg_boxes: dict[int, set[int]] = {}
    for b in tree.boxes:
        if b.ntrg == 0:
            continue
        partners = [int(a) for a in lists.V[b.index] if nsrc[int(a)] > 0]
        if not partners:
            continue
        level = b.level
        npairs[level] = npairs.get(level, 0) + len(partners)
        trg_boxes.setdefault(level, set()).add(b.index)
        src_boxes.setdefault(level, set()).update(partners)
    return {
        level: (npairs[level], len(src_boxes[level]), len(trg_boxes[level]))
        for level in npairs
    }


def resolve_m2l_schedule(
    mode: str,
    dtype: str,
    *,
    stats: dict[int, tuple[int, int, int]],
    cache,
    kernel,
) -> M2LSchedule:
    """Resolve an ``FMMOptions`` backend request into a per-level schedule.

    Uniform modes assign their backend to every level with V pairs.
    ``auto`` scores each level's three candidates as ``modelled flops /
    achievable-rate weight`` and keeps the cheapest:

    - dense: ``npairs * 2 (n_surf md)(n_surf qd)``
    - rsvd:  ``npairs * 2 k n_surf (md + qd)`` with ``k`` probed from
      the compression rank of the reference offset class ``(2, 0, 0)``
    - fft:   per-box forward/inverse transforms plus the per-pair
      Hadamard, down-weighted by the fft efficiency factor

    The decision is deterministic (ties break by backend name) and
    depends only on the gated V statistics, so every code path that sees
    the same tree resolves the same schedule.
    """
    if mode not in M2L_MODES:
        raise ValueError(
            f"m2l must be one of {M2L_MODES}, got {mode!r}"
        )
    if dtype not in M2L_DTYPES:
        raise ValueError(
            f"dtype must be one of {M2L_DTYPES}, got {dtype!r}"
        )
    if mode != "auto":
        return M2LSchedule(mode, dtype, {level: mode for level in stats})
    ns = cache.n_surf
    md, qd = kernel.source_dof, kernel.target_dof
    grid = 2 * cache.p
    nfreq = grid * grid * (grid // 2 + 1)
    backends: dict[int, str] = {}
    for level, (npairs, nsb, ntb) in sorted(stats.items()):
        khat = cache.m2l_rsvd_rank(level, (2, 0, 0))
        scores = {
            "dense": npairs * 2.0 * (ns * md) * (ns * qd)
            / _EFFICIENCY["dense"],
            "rsvd": npairs * 2.0 * khat * ns * (md + qd)
            / _EFFICIENCY["rsvd"],
            "fft": (
                (nsb * md + ntb * qd) * 4.0 * nfreq * ns
                + npairs * 8.0 * qd * md * nfreq
            )
            / _EFFICIENCY["fft"],
        }
        backends[level] = min(scores, key=lambda b: (scores[b], b))
    return M2LSchedule("auto", dtype, backends)


def as_schedule(
    m2l,
    *,
    dtype: str = "float64",
    stats=None,
    cache=None,
    kernel=None,
) -> M2LSchedule:
    """Coerce a mode string or an already-resolved schedule.

    Evaluator entry points accept either; resolving a string requires
    the V statistics plus the cache/kernel pair (for the ``auto`` probe).
    """
    if isinstance(m2l, M2LSchedule):
        return m2l
    if stats is None:
        raise ValueError(
            f"resolving m2l={m2l!r} needs V-list statistics; pass a "
            f"resolved M2LSchedule or the stats/cache/kernel triple"
        )
    return resolve_m2l_schedule(
        m2l, dtype, stats=stats, cache=cache, kernel=kernel
    )
