"""Static and trace-based correctness analysis for the reproduction.

Two pillars (see ``docs/architecture.md`` § "Analysis & correctness
tooling"):

- :mod:`repro.analysis.trace` / :mod:`repro.analysis.commcheck` — a
  per-rank communication event trace recorded by the simulated MPI
  runtime (Lamport + vector clocks on every send/recv/collective) and an
  offline analyzer that builds the happens-before relation and proves an
  execution free of leaked messages, wait-for deadlock cycles,
  collective divergence and channel-order nondeterminism.
- :mod:`repro.analysis.lint` — an ``ast``-based lint of repo invariants
  (flop accounting, thread confinement, dtype width, buffer-pool
  escapes, mutable defaults) run as ``python -m repro.analysis.lint
  src/``.
"""

from repro.analysis.commcheck import CommReport, Finding, check_trace, compare_traces
from repro.analysis.trace import CommTrace, TraceEvent, payload_digest

__all__ = [
    "CommReport",
    "CommTrace",
    "Finding",
    "TraceEvent",
    "check_trace",
    "compare_traces",
    "payload_digest",
]
