"""Regularised pseudo-inverse tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import regularized_pinv, svd_rank, truncated_svd


class TestWellConditioned:
    def test_inverts_square_matrix(self, rng):
        A = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        assert np.allclose(regularized_pinv(A) @ A, np.eye(6), atol=1e-10)

    def test_least_squares_property(self, rng):
        A = rng.standard_normal((10, 4))
        b = rng.standard_normal(10)
        x = regularized_pinv(A) @ b
        # residual orthogonal to range(A)
        assert np.allclose(A.T @ (A @ x - b), 0.0, atol=1e-10)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_moore_penrose_conditions(self, m, n):
        A = np.random.default_rng(m * 10 + n).standard_normal((m, n))
        P = regularized_pinv(A, rcond=1e-13)
        assert np.allclose(A @ P @ A, A, atol=1e-8)
        assert np.allclose(P @ A @ P, P, atol=1e-8)


class TestRegularisation:
    def test_truncates_small_singular_values(self):
        # rank-1 matrix plus tiny noise: pinv without truncation explodes
        u = np.array([1.0, 0.0])
        A = np.outer(u, u) + 1e-14 * np.array([[0, 1], [1, 0]])
        P = regularized_pinv(A, rcond=1e-8)
        assert np.abs(P).max() < 10.0  # the 1e14 mode was cut

    def test_zero_matrix(self):
        P = regularized_pinv(np.zeros((3, 4)))
        assert P.shape == (4, 3)
        assert np.all(P == 0.0)

    def test_degenerate_fallback_dtype_contract(self):
        """The rank-0 fallback must honour the float64 output contract.

        Regression: the all-modes-truncated path returns a fresh zeros
        array rather than an einsum over empty factors; it must still be
        float64 regardless of the input dtype (integer lists, float32
        arrays) — downstream accumulations rely on it.
        """
        for degenerate in (
            np.zeros((3, 4)),
            np.zeros((3, 4), dtype=np.float32),
            [[0, 0], [0, 0], [0, 0]],
        ):
            P = regularized_pinv(degenerate, rcond=1e-8)
            m, n = np.shape(degenerate)
            assert P.shape == (n, m)
            assert P.dtype == np.float64
            assert np.all(P == 0.0)

    def test_keep_boundary_is_inclusive(self):
        """A singular value exactly at rcond * s[0] is kept, not cut."""
        s = np.array([1.0, 0.5, 1e-8, 1e-12])
        assert svd_rank(s, 1e-8) == 3  # 1e-8 == rcond * s[0] survives
        assert svd_rank(s, np.nextafter(1e-8, 1.0)) == 2
        assert svd_rank(np.zeros(3), 1e-8) == 0
        assert svd_rank(np.zeros(0), 1e-8) == 0
        with pytest.raises(ValueError):
            svd_rank(s, -1e-3)


class TestTruncatedSVD:
    def test_factors_reconstruct(self, rng):
        A = rng.standard_normal((7, 5))
        u, s, vt = truncated_svd(A, rcond=1e-12)
        assert np.allclose((u * s) @ vt, A, atol=1e-10)
        assert u.flags["C_CONTIGUOUS"] and vt.flags["C_CONTIGUOUS"]
        assert u.dtype == s.dtype == vt.dtype == np.float64

    def test_truncates_rank(self, rng):
        B = rng.standard_normal((8, 3))
        A = B @ B.T  # rank 3 in an 8x8 matrix
        u, s, vt = truncated_svd(A, rcond=1e-10)
        assert s.size == 3
        assert u.shape == (8, 3) and vt.shape == (3, 8)

    def test_matches_pinv_construction(self, rng):
        A = rng.standard_normal((6, 4))
        u, s, vt = truncated_svd(A, rcond=1e-12)
        assert np.allclose(
            (vt.T / s) @ u.T, regularized_pinv(A, rcond=1e-12), atol=1e-12
        )

    def test_cutoff_monotone(self, rng):
        """Stronger truncation never increases the inverse's norm."""
        A = rng.standard_normal((8, 8))
        A = A @ np.diag(10.0 ** -np.arange(8)) @ rng.standard_normal((8, 8))
        norms = [
            np.linalg.norm(regularized_pinv(A, rcond=rc))
            for rc in (1e-14, 1e-8, 1e-4, 1e-1)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(norms, norms[1:]))


class TestValidation:
    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            regularized_pinv(np.zeros(5))

    def test_rejects_negative_rcond(self):
        with pytest.raises(ValueError):
            regularized_pinv(np.eye(2), rcond=-1.0)
