"""Property-based tests for 2D Morton encoding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twod.quadtree import MAX_DEPTH_2D, anchor_to_key_2d

COORD = st.integers(min_value=0, max_value=(1 << MAX_DEPTH_2D) - 1)


@given(COORD, COORD)
@settings(max_examples=150)
def test_key_in_range(ix, iy):
    key = int(anchor_to_key_2d(ix, iy))
    assert 0 <= key < (1 << (2 * MAX_DEPTH_2D))


@given(COORD, COORD, COORD, COORD)
@settings(max_examples=150)
def test_injective(ax, ay, bx, by):
    ka = int(anchor_to_key_2d(ax, ay))
    kb = int(anchor_to_key_2d(bx, by))
    if (ax, ay) != (bx, by):
        assert ka != kb
    else:
        assert ka == kb


@given(COORD, COORD)
@settings(max_examples=100)
def test_bit_interleaving_structure(ix, iy):
    """Even bits carry x, odd bits carry y."""
    key = int(anchor_to_key_2d(ix, iy))
    rx = ry = 0
    for bit in range(MAX_DEPTH_2D):
        rx |= ((key >> (2 * bit)) & 1) << bit
        ry |= ((key >> (2 * bit + 1)) & 1) << bit
    assert rx == ix
    assert ry == iy


def test_vectorised_matches_scalar(rng):
    ix = rng.integers(0, 1 << MAX_DEPTH_2D, size=50)
    iy = rng.integers(0, 1 << MAX_DEPTH_2D, size=50)
    keys = anchor_to_key_2d(ix, iy)
    for i in range(50):
        assert int(keys[i]) == int(anchor_to_key_2d(ix[i], iy[i]))
