"""Local essential tree (LET) classification (Sections 3.1–3.2).

The LET of a processor P (Warren & Salmon, ref [23]) "first contains the
boxes which contain points belonging to P and second the boxes in the U,
V, W, and X lists of these boxes.  For a box B of the first kind, we say
P contributes to B ... If B is of the second kind, we say P uses B."

We split "uses" by what data is needed, matching the two communication
sub-steps of Section 3.2:

- ``uses_equiv`` — P needs the *global upward equivalent density* of the
  box: it appears in the V list of a box P computes the downward pass
  for, or in the W list of a leaf with local targets;
- ``uses_source`` — P needs the box's *source positions and densities*
  (ghosts): it appears in the U list of a leaf with local targets, or in
  the X list of a box with local targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.octree.lists import InteractionLists
from repro.octree.tree import Octree


@dataclass
class LETUsage:
    """Which global data this rank needs for its downward computation."""

    uses_equiv: np.ndarray  # (nboxes,) bool
    uses_source: np.ndarray  # (nboxes,) bool


def classify_let(
    tree: Octree,
    lists: InteractionLists,
    local_trg: np.ndarray,
) -> LETUsage:
    """Compute the usage masks for a rank with targets in ``local_trg`` boxes.

    ``local_trg[b]`` is True when box ``b``'s subtree holds targets owned
    by this rank — exactly the boxes whose downward computation the rank
    performs (ignoring other processors, per Section 3).
    """
    nb = tree.nboxes
    uses_equiv = np.zeros(nb, dtype=bool)
    uses_source = np.zeros(nb, dtype=bool)
    active = np.asarray(local_trg, dtype=bool)
    leaf = np.fromiter((b.is_leaf for b in tree.boxes), dtype=bool, count=nb)
    for which, out, gate in (
        ("V", uses_equiv, active),
        ("X", uses_source, active),
        ("W", uses_equiv, active & leaf),
        ("U", uses_source, active & leaf),
    ):
        ptr, idx = lists.flat(which)
        trg = np.repeat(np.arange(nb), np.diff(ptr))
        out[idx[gate[trg]]] = True
    return LETUsage(uses_equiv=uses_equiv, uses_source=uses_source)


def gather_users(
    comm, usage: LETUsage
) -> tuple[np.ndarray, np.ndarray]:
    """Allgather the usage masks into (nranks, nboxes) user matrices."""
    stacked = comm.allgather(
        np.stack([usage.uses_equiv, usage.uses_source]).astype(np.uint8)
    )
    arr = np.stack(stacked).astype(bool)
    return arr[:, 0, :], arr[:, 1, :]
